"""Query planner: resolved AST -> physical operator tree.

Pipeline: name resolution -> predicate classification (pushdown /
equi-join edges / residual / EXISTS) -> scan leaves with selective
column lists and pushed predicates -> greedy join tree (optimizer) ->
semi-joins -> aggregation (hash or sort, optimizer) -> HAVING -> ORDER
BY -> projection -> LIMIT.

The scan leaf is the only place engines differ (§4.1: "PostgresRaw
overrides the scan operator ... while the remaining query plan ...
works without changes").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.simcost.model import CostModel
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.catalog import Catalog, TableInfo
from repro.sql.expressions import (
    collect_aggregates,
    collect_column_refs,
    compile_expr,
    conjoin,
    contains_parameter,
    expr_key,
    split_conjuncts,
)
from repro.sql.operators import (
    AggSpec,
    FilterOp,
    GateOp,
    HashAggregateOp,
    HashJoinOp,
    HashSemiJoinOp,
    LimitOp,
    NestedLoopJoinOp,
    PlanOp,
    ProjectOp,
    ScanOp,
    SortAggregateOp,
    SortOp,
)
from repro.sql.optimizer import Optimizer
from repro.sql.scanapi import ScanPredicate
from repro.sql.vectorize import build_vector_predicate, build_vector_value


@dataclass
class PlannedQuery:
    root: PlanOp
    names: list[str]

    def describe(self) -> dict:
        return self.root.describe()


def render_expr(expr: Expr) -> str:
    """Readable column-name rendering for un-aliased select items."""
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, FuncCall):
        args = ", ".join(
            "*" if isinstance(a, Star) else render_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, BinaryOp):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, UnaryOp):
        return f"{expr.op} {render_expr(expr.operand)}"
    if isinstance(expr, CaseExpr):
        return "case"
    return type(expr).__name__.lower()


def _rewrite(expr: Expr, resolve) -> Expr:
    """Rebuild ``expr`` with every ColumnRef replaced via ``resolve``.

    Exists nodes are left alone — the semi-join planner resolves their
    subqueries with the proper nested scope.
    """
    if isinstance(expr, ColumnRef):
        return resolve(expr)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _rewrite(expr.left, resolve),
                        _rewrite(expr.right, resolve))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rewrite(expr.operand, resolve))
    if isinstance(expr, FuncCall):
        args = tuple(a if isinstance(a, Star) else _rewrite(a, resolve)
                     for a in expr.args)
        return FuncCall(expr.name, args, expr.distinct)
    if isinstance(expr, CaseExpr):
        whens = tuple((_rewrite(c, resolve), _rewrite(r, resolve))
                      for c, r in expr.whens)
        else_result = (_rewrite(expr.else_result, resolve)
                       if expr.else_result is not None else None)
        return CaseExpr(whens, else_result)
    if isinstance(expr, LikeExpr):
        return LikeExpr(_rewrite(expr.operand, resolve), expr.pattern,
                        expr.negated)
    if isinstance(expr, InList):
        return InList(_rewrite(expr.operand, resolve),
                      tuple(_rewrite(i, resolve) for i in expr.items),
                      expr.negated)
    if isinstance(expr, Between):
        return Between(_rewrite(expr.operand, resolve),
                       _rewrite(expr.low, resolve),
                       _rewrite(expr.high, resolve), expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(_rewrite(expr.operand, resolve), expr.negated)
    return expr


class _Scope:
    """Name resolution over the query's table bindings (+ outer scope
    for correlated subqueries)."""

    def __init__(self, bindings: dict[str, TableInfo],
                 outer: "_Scope | None" = None):
        self.bindings = bindings
        self.outer = outer

    def resolve(self, ref: ColumnRef) -> tuple[ColumnRef, bool]:
        """Canonical ref + whether it came from the outer scope."""
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            info = self.bindings.get(binding)
            if info is not None:
                if not info.schema.has_column(name):
                    raise PlanningError(
                        f"column {ref.display!r} not in table {info.name!r}")
                return ColumnRef(name, binding), False
            if self.outer is not None:
                resolved, _ = self.outer.resolve(ref)
                return resolved, True
            raise PlanningError(f"unknown table reference: {ref.table!r}")
        matches = [binding for binding, info in self.bindings.items()
                   if info.schema.has_column(name)]
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column: {ref.name!r}")
        if len(matches) == 1:
            return ColumnRef(name, matches[0]), False
        if self.outer is not None:
            resolved, _ = self.outer.resolve(ref)
            return resolved, True
        raise PlanningError(f"unknown column: {ref.name!r}")


class Planner:
    def __init__(self, catalog: Catalog, model: CostModel,
                 optimizer: Optimizer | None = None):
        self.catalog = catalog
        self.model = model
        self.optimizer = optimizer if optimizer is not None else Optimizer()

    # ------------------------------------------------------------------
    def plan(self, select: Select) -> PlannedQuery:
        bindings = self._bind_tables(select.tables)
        scope = _Scope(bindings)
        resolve = self._strict_resolver(scope)

        items = self._expand_star(select.items, bindings)
        items = [SelectItem(_rewrite(item.expr, resolve), item.alias)
                 for item in items]
        alias_map = {item.alias.lower(): item.expr
                     for item in items if item.alias}

        where = (_rewrite(select.where, resolve)
                 if select.where is not None else None)
        group_by = [self._resolve_with_aliases(g, alias_map, resolve)
                    for g in select.group_by]
        having = (self._resolve_with_aliases(select.having, alias_map,
                                             resolve)
                  if select.having is not None else None)
        order_by = [
            OrderItem(self._resolve_with_aliases(o.expr, alias_map, resolve),
                      o.descending)
            for o in select.order_by
        ]

        pushed, join_edges, residual, semijoins, const_conjuncts = (
            self._classify_where(where, bindings))

        # Columns each binding must emit from its scan.
        needed: dict[str, list[ColumnRef]] = {b: [] for b in bindings}
        seen: set[str] = set()

        def note(expr: Expr | None) -> None:
            for ref in collect_column_refs(expr):
                key = expr_key(ref)
                if key not in seen:
                    seen.add(key)
                    needed[ref.table].append(ref)

        for item in items:
            note(item.expr)
        for group in group_by:
            note(group)
        note(having)
        for order in order_by:
            note(order.expr)
        for conjunct in residual:
            note(conjunct)
        for left_ref, right_ref in join_edges:
            note(left_ref)
            note(right_ref)
        for exists_expr, outer_refs in semijoins:
            for ref in outer_refs:
                note(ref)

        relation, est_rows = self._plan_relational(
            bindings, pushed, join_edges, residual, needed)

        if const_conjuncts:
            # Conjuncts holding ? placeholders cannot be folded at plan
            # time (prepared statements plan once, bind many times);
            # they become a gate evaluated once per execution.
            static = [c for c in const_conjuncts
                      if not contains_parameter(c)]
            dynamic = [c for c in const_conjuncts if contains_parameter(c)]
            if static:
                value_fns = [compile_expr(c, lambda node: None)
                             for c in static]
                if not all(fn(()) is True for fn in value_fns):
                    relation = LimitOp(self.model, relation, 0)
            if dynamic:
                relation = GateOp(
                    self.model, relation,
                    compile_expr(conjoin(dynamic), lambda node: None),
                    n_terms=len(dynamic))

        for exists_expr, _outer_refs in semijoins:
            relation = self._plan_semijoin(relation, exists_expr, scope)

        aggregates = []
        for item in items:
            aggregates.extend(collect_aggregates(item.expr))
        aggregates.extend(collect_aggregates(having))
        for order in order_by:
            aggregates.extend(collect_aggregates(order.expr))
        unique_aggs: dict[str, FuncCall] = {}
        for agg in aggregates:
            unique_aggs.setdefault(expr_key(agg), agg)

        if unique_aggs or group_by:
            relation = self._plan_aggregate(relation, group_by,
                                            list(unique_aggs.values()),
                                            bindings, est_rows)

        if having is not None:
            resolver = _resolver_for(relation.layout)
            having_conjuncts = split_conjuncts(having)
            relation = FilterOp(self.model, relation,
                                compile_expr(having, resolver),
                                n_terms=len(having_conjuncts),
                                label="Having",
                                vector_fn=build_vector_predicate(
                                    having_conjuncts, resolver))

        if order_by:
            resolver = _resolver_for(relation.layout)
            key_fns = [compile_expr(o.expr, resolver) for o in order_by]
            relation = SortOp(self.model, relation, key_fns,
                              [o.descending for o in order_by],
                              key_idx=[resolver(o.expr)
                                       for o in order_by])

        resolver = _resolver_for(relation.layout)
        fns = [compile_expr(item.expr, resolver) for item in items]
        names = [item.alias or render_expr(item.expr) for item in items]
        layout = {expr_key(item.expr): i for i, item in enumerate(items)}
        relation = ProjectOp(self.model, relation, fns, layout, names,
                             col_indices=[resolver(item.expr)
                                          for item in items])

        if select.limit is not None:
            relation = LimitOp(self.model, relation, select.limit)
        return PlannedQuery(relation, names)

    # ------------------------------------------------------------------
    def _bind_tables(self, refs: list[TableRef]) -> dict[str, TableInfo]:
        if not refs:
            raise PlanningError("query has no FROM clause")
        bindings: dict[str, TableInfo] = {}
        for ref in refs:
            binding = ref.binding.lower()
            if binding in bindings:
                raise PlanningError(f"duplicate table binding: {binding!r}")
            bindings[binding] = self.catalog.get(ref.name)
        return bindings

    def _strict_resolver(self, scope: _Scope):
        def resolve(ref: ColumnRef) -> ColumnRef:
            resolved, is_outer = scope.resolve(ref)
            if is_outer:
                raise PlanningError(
                    f"correlated reference {ref.display!r} outside EXISTS")
            return resolved
        return resolve

    def _expand_star(self, items: list[SelectItem],
                     bindings: dict[str, TableInfo]) -> list[SelectItem]:
        expanded: list[SelectItem] = []
        for item in items:
            if isinstance(item.expr, Star):
                for binding, info in bindings.items():
                    for column in info.schema:
                        expanded.append(SelectItem(
                            ColumnRef(column.name.lower(), binding)))
            else:
                expanded.append(item)
        return expanded

    def _resolve_with_aliases(self, expr: Expr, alias_map, resolve) -> Expr:
        """GROUP BY / HAVING / ORDER BY may reference select aliases."""
        if (isinstance(expr, ColumnRef) and expr.table is None
                and expr.name.lower() in alias_map):
            try:
                return resolve(expr)
            except PlanningError:
                return alias_map[expr.name.lower()]
        return _rewrite(expr, resolve)

    # ------------------------------------------------------------------
    def _classify_where(self, where: Expr | None,
                        bindings: dict[str, TableInfo]):
        pushed: dict[str, list[Expr]] = {b: [] for b in bindings}
        join_edges: list[tuple[ColumnRef, ColumnRef]] = []
        residual: list[Expr] = []
        semijoins: list[tuple[Exists, list[ColumnRef]]] = []
        const_conjuncts: list[Expr] = []
        for conjunct in split_conjuncts(where):
            normalized = conjunct
            if (isinstance(normalized, UnaryOp) and normalized.op == "not"
                    and isinstance(normalized.operand, Exists)):
                inner = normalized.operand
                normalized = Exists(inner.subquery, not inner.negated)
            if isinstance(normalized, Exists):
                outer_refs = self._correlated_outer_refs(normalized, bindings)
                semijoins.append((normalized, outer_refs))
                continue
            refs = collect_column_refs(normalized)
            tables = {ref.table for ref in refs}
            if not tables:
                const_conjuncts.append(normalized)
            elif len(tables) == 1:
                pushed[tables.pop()].append(normalized)
            elif (isinstance(normalized, BinaryOp) and normalized.op == "="
                    and isinstance(normalized.left, ColumnRef)
                    and isinstance(normalized.right, ColumnRef)
                    and normalized.left.table != normalized.right.table):
                join_edges.append((normalized.left, normalized.right))
            else:
                residual.append(normalized)
        return pushed, join_edges, residual, semijoins, const_conjuncts

    def _correlated_outer_refs(self, exists_expr: Exists,
                               outer_bindings: dict[str, TableInfo],
                               ) -> list[ColumnRef]:
        """Outer columns an EXISTS conjunct correlates on (these must be
        present in the outer relation's output)."""
        sub = exists_expr.subquery
        inner_bindings = self._bind_tables(sub.tables)
        scope = _Scope(inner_bindings, _Scope(outer_bindings))
        outer_refs: list[ColumnRef] = []
        for conjunct in split_conjuncts(sub.where):
            for ref in collect_column_refs(conjunct):
                resolved, is_outer = scope.resolve(ref)
                if is_outer:
                    outer_refs.append(resolved)
        return outer_refs

    # ------------------------------------------------------------------
    def _build_scan(self, binding: str, info: TableInfo,
                    pushed: list[Expr], needed_refs: list[ColumnRef],
                    ) -> tuple[ScanOp, float]:
        schema = info.schema
        if not needed_refs:
            # A scan must emit something (e.g. COUNT(*) queries): use the
            # first column, the cheapest to tokenize.
            needed_refs = [ColumnRef(schema.columns[0].name.lower(), binding)]
        needed_idx = [schema.index_of(ref.name) for ref in needed_refs]
        layout = {expr_key(ref): i for i, ref in enumerate(needed_refs)}
        predicate = None
        if pushed:
            conjoined = conjoin(pushed)

            def attr_resolver(node, _binding=binding, _schema=schema):
                if isinstance(node, ColumnRef) and node.table == _binding:
                    return _schema.index_of(node.name)
                return None

            fn = compile_expr(conjoined, attr_resolver)
            attrs = sorted({schema.index_of(ref.name)
                            for ref in collect_column_refs(conjoined)})
            vector_fn = build_vector_predicate(pushed, attr_resolver)
            predicate = ScanPredicate(attrs, fn, n_terms=len(pushed),
                                      conjuncts=pushed,
                                      vector_fn=vector_fn)
        if info.access is None:
            raise PlanningError(
                f"table {info.name!r} has no access method bound")
        scan = ScanOp(self.model, layout, info.access, needed_idx,
                      predicate, info.name)
        est = self.optimizer.scan_rows(info, pushed)
        # Partitioned tables: intersect pushed conjuncts with per-file
        # zone maps at plan time — EXPLAIN shows the pruning decision
        # and the estimate shrinks to the surviving files' rows.
        select_fn = getattr(info.access, "select_partitions", None)
        if select_fn is not None:
            selection = select_fn(pushed)
            scan.partitions = selection
            if selection.est_rows is not None:
                est = self.optimizer.scan_rows(
                    info, pushed, base_rows=float(selection.est_rows))
        return scan, est

    def _plan_relational(self, bindings: dict[str, TableInfo],
                         pushed: dict[str, list[Expr]],
                         join_edges: list[tuple[ColumnRef, ColumnRef]],
                         residual: list[Expr],
                         needed: dict[str, list[ColumnRef]],
                         ) -> tuple[PlanOp, float]:
        scans: dict[str, ScanOp] = {}
        est: dict[str, float] = {}
        for binding, info in bindings.items():
            scans[binding], est[binding] = self._build_scan(
                binding, info, pushed[binding], needed[binding])

        edge_pairs = {tuple(sorted((l.table, r.table)))
                      for l, r in join_edges}
        order = self.optimizer.order_bindings(list(bindings), est,
                                              edge_pairs)
        current: PlanOp = scans[order[0]]
        current_est = est[order[0]]
        bound = {order[0]}
        remaining_residual = list(residual)

        for binding in order[1:]:
            incoming = scans[binding]
            edges_here: list[tuple[ColumnRef, ColumnRef]] = []
            for left_ref, right_ref in join_edges:
                if left_ref.table in bound and right_ref.table == binding:
                    edges_here.append((left_ref, right_ref))
                elif right_ref.table in bound and left_ref.table == binding:
                    edges_here.append((right_ref, left_ref))
            if edges_here:
                # Build on the smaller side (HashJoinOp builds right).
                if est[binding] <= current_est:
                    left, right = current, incoming
                    left_keys = [l for l, _ in edges_here]
                    right_keys = [r for _, r in edges_here]
                else:
                    left, right = incoming, current
                    left_keys = [r for _, r in edges_here]
                    right_keys = [l for l, _ in edges_here]
                layout = dict(left.layout)
                shift = len(left.layout)
                for key, idx in right.layout.items():
                    layout[key] = idx + shift
                left_resolver = _resolver_for(left.layout)
                right_resolver = _resolver_for(right.layout)
                current = HashJoinOp(
                    self.model, left, right,
                    [compile_expr(k, left_resolver) for k in left_keys],
                    [compile_expr(k, right_resolver) for k in right_keys],
                    layout,
                    left_key_idx=[left_resolver(k) for k in left_keys],
                    right_key_idx=[right_resolver(k) for k in right_keys])
                current_est = self.optimizer.join_output_rows(
                    current_est, est[binding], len(edges_here))
            else:
                layout = dict(current.layout)
                shift = len(current.layout)
                for key, idx in incoming.layout.items():
                    layout[key] = idx + shift
                current = NestedLoopJoinOp(self.model, current, incoming,
                                           layout)
                current_est = self.optimizer.join_output_rows(
                    current_est, est[binding], 0)
            bound.add(binding)
            current, remaining_residual = self._attach_residual(
                current, remaining_residual, bound)

        current, remaining_residual = self._attach_residual(
            current, remaining_residual, bound)
        if remaining_residual:
            raise PlanningError(
                f"unplaceable predicates: {remaining_residual!r}")
        return current, current_est

    def _attach_residual(self, plan: PlanOp, residual: list[Expr],
                         bound: set[str]) -> tuple[PlanOp, list[Expr]]:
        remaining: list[Expr] = []
        ready: list[Expr] = []
        for conjunct in residual:
            tables = {ref.table for ref in collect_column_refs(conjunct)}
            if tables <= bound:
                ready.append(conjunct)
            else:
                remaining.append(conjunct)
        if ready:
            resolver = _resolver_for(plan.layout)
            plan = FilterOp(self.model, plan,
                            compile_expr(conjoin(ready), resolver),
                            n_terms=len(ready),
                            vector_fn=build_vector_predicate(ready,
                                                             resolver))
        return plan, remaining

    # ------------------------------------------------------------------
    def _plan_semijoin(self, outer: PlanOp, exists_expr: Exists,
                       outer_scope: _Scope) -> PlanOp:
        sub = exists_expr.subquery
        inner_bindings = self._bind_tables(sub.tables)
        overlap = set(inner_bindings) & set(outer_scope.bindings)
        if overlap:
            raise PlanningError(
                f"EXISTS subquery reuses outer binding names: {overlap}")
        scope = _Scope(inner_bindings, outer_scope)

        inner_pushed: dict[str, list[Expr]] = {b: [] for b in inner_bindings}
        inner_edges: list[tuple[ColumnRef, ColumnRef]] = []
        inner_residual: list[Expr] = []
        correlations: list[tuple[ColumnRef, ColumnRef]] = []  # (inner, outer)

        for conjunct in split_conjuncts(sub.where):
            is_outer_flags: dict[str, bool] = {}

            def resolve(ref: ColumnRef) -> ColumnRef:
                resolved, is_outer = scope.resolve(ref)
                is_outer_flags[expr_key(resolved)] = is_outer
                return resolved

            rewritten = _rewrite(conjunct, resolve)
            refs = collect_column_refs(rewritten)
            outer_refs = [r for r in refs if is_outer_flags.get(expr_key(r))]
            inner_refs = [r for r in refs
                          if not is_outer_flags.get(expr_key(r))]
            if not outer_refs:
                tables = {ref.table for ref in inner_refs}
                if len(tables) == 1:
                    inner_pushed[tables.pop()].append(rewritten)
                elif (isinstance(rewritten, BinaryOp)
                        and rewritten.op == "="
                        and isinstance(rewritten.left, ColumnRef)
                        and isinstance(rewritten.right, ColumnRef)):
                    inner_edges.append((rewritten.left, rewritten.right))
                else:
                    inner_residual.append(rewritten)
                continue
            if (isinstance(rewritten, BinaryOp) and rewritten.op == "="
                    and isinstance(rewritten.left, ColumnRef)
                    and isinstance(rewritten.right, ColumnRef)
                    and len(outer_refs) == 1 and len(inner_refs) == 1):
                if is_outer_flags[expr_key(rewritten.left)]:
                    correlations.append((rewritten.right, rewritten.left))
                else:
                    correlations.append((rewritten.left, rewritten.right))
                continue
            raise PlanningError(
                "only equality correlations are supported in EXISTS "
                f"(got {conjunct!r})")
        if not correlations:
            raise PlanningError("uncorrelated EXISTS is not supported")

        inner_needed: dict[str, list[ColumnRef]] = {b: []
                                                    for b in inner_bindings}
        seen: set[str] = set()
        for ref_list in ([i for i, _ in correlations],
                         [r for c in inner_residual
                          for r in collect_column_refs(c)],
                         [r for e in inner_edges for r in e]):
            for ref in ref_list:
                key = expr_key(ref)
                if key not in seen:
                    seen.add(key)
                    inner_needed[ref.table].append(ref)
        inner_plan, _ = self._plan_relational(
            inner_bindings, inner_pushed, inner_edges, inner_residual,
            inner_needed)

        outer_resolver = _resolver_for(outer.layout)
        inner_resolver = _resolver_for(inner_plan.layout)
        outer_key_fns = [compile_expr(o, outer_resolver)
                         for _, o in correlations]
        inner_key_fns = [compile_expr(i, inner_resolver)
                         for i, _ in correlations]
        return HashSemiJoinOp(self.model, outer, inner_plan,
                              outer_key_fns, inner_key_fns,
                              negated=exists_expr.negated)

    # ------------------------------------------------------------------
    def _plan_aggregate(self, child: PlanOp, group_by: list[Expr],
                        aggregates: list[FuncCall],
                        bindings: dict[str, TableInfo],
                        input_est: float) -> PlanOp:
        resolver = _resolver_for(child.layout)
        group_fns = [compile_expr(g, resolver) for g in group_by]
        specs: list[AggSpec] = []
        for agg in aggregates:
            if agg.name == "count" and (not agg.args
                                        or isinstance(agg.args[0], Star)):
                specs.append(AggSpec("count_star", None, expr_key(agg)))
            else:
                if len(agg.args) != 1:
                    raise PlanningError(
                        f"{agg.name}() takes exactly one argument")
                arg_fn = compile_expr(agg.args[0], resolver)
                specs.append(AggSpec(agg.name, arg_fn, expr_key(agg),
                                     agg.distinct))
        layout: dict[str, int] = {}
        for i, group in enumerate(group_by):
            layout[expr_key(group)] = i
        for j, spec in enumerate(specs):
            layout[spec.key] = len(group_by) + j

        group_cols: list[tuple[TableInfo, str]] = []
        for group in group_by:
            for ref in collect_column_refs(group):
                group_cols.append((bindings[ref.table], ref.name))
        strategy = self.optimizer.agg_strategy(group_cols, input_est,
                                               has_group_by=bool(group_by))
        op_cls = HashAggregateOp if strategy == "hash" else SortAggregateOp
        # Vectorized twins of the row closures: group keys and aggregate
        # arguments as column functions (None where not vectorizable —
        # the operator then falls back to the row path wholesale).
        group_value_fns = [build_vector_value(g, resolver)
                           for g in group_by]
        agg_value_fns = [
            None if spec.func == "count_star"
            else build_vector_value(agg.args[0], resolver)
            for spec, agg in zip(specs, aggregates)
        ]
        return op_cls(self.model, child, group_fns, specs, layout,
                      group_value_fns=group_value_fns,
                      agg_value_fns=agg_value_fns)


def _resolver_for(layout: dict[str, int]):
    def resolve(node):
        return layout.get(expr_key(node))
    return resolve
