"""The query router: aggregate queries -> rollup probes / zone folds.

Sits inside ``Database._plan``. For every single-table aggregate query
it (1) records the grouping pattern for the idle tuner's rollup
proposals, (2) tries to fold bare MIN/MAX/COUNT(*) on partitioned
tables straight out of complete zone maps (zero bytes read, opt-in via
``enable_zone_aggregates``), and (3) matches the query against the
engine's registered rollups, rewriting a covered query to probe the
smallest fresh rollup instead of rescanning the raw file.

Routing is invisible until it can matter: with no rollups registered,
queries plan exactly as before — no counters, no EXPLAIN annotation.
Once rollups exist, every aggregate query either probes one
(``rollup: <name>`` in EXPLAIN, ``rollup_hits`` on the clock) or falls
back to the raw scan with the reason (``rollup: none (...)``,
``rollup_misses``).

Bit-identity: routed answers must equal raw-scan answers exactly.
Dimension-subset re-aggregation is lossless for count/sum(int)/min/max
(float sums are only routed on exact dimension matches); predicate
columns must be rollup dimensions, so WHERE qualifies whole stored
groups; builds pin hash aggregation (heap order = the raw file's
first-seen group order) and probes pin whatever strategy the raw plan
would have chosen, so row order matches too.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterator

from repro.errors import ReproError
from repro.rollup.builder import ForcedAggOptimizer
from repro.rollup.metadata import RollupInfo, agg_signature
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.catalog import Catalog, TableInfo
from repro.sql.expressions import (
    _children,
    collect_aggregates,
    collect_column_refs,
    expr_key,
)
from repro.sql.operators import LimitOp, PlanOp
from repro.sql.planner import PlannedQuery, Planner, _rewrite, render_expr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.optimizer import Optimizer

#: aggregate functions whose state a rollup can store
_ROUTABLE_FUNCS = {"sum", "avg", "min", "max", "count"}


class RoutedQuery(PlannedQuery):
    """A planned query whose routing decision shows up in EXPLAIN as a
    top-level ``rollup`` attribute: the probed rollup's name, or
    ``none (<reason>)`` for an annotated fallback."""

    def __init__(self, root: PlanOp, names: list[str], rollup_label: str):
        super().__init__(root, names)
        self.rollup_label = rollup_label

    def describe(self) -> dict:
        out = dict(self.root.describe())
        out["rollup"] = self.rollup_label
        return out


class ZoneAggregateOp(PlanOp):
    """A constant-row plan leaf: the aggregate was answered entirely
    from per-file zone maps at plan time. Charges nothing — no file is
    opened, no byte is read (``files_scanned`` stays 0)."""

    def __init__(self, model, layout, row: tuple, table_name: str,
                 files: int):
        super().__init__(model, layout)
        self.row = tuple(row)
        self.table_name = table_name
        self.files = files

    def rows(self) -> Iterator[tuple]:
        yield self.row

    def describe(self) -> dict:
        return {"op": "ZoneAggregate", "table": self.table_name,
                "files": self.files, "files_scanned": 0}


class _Shape:
    """The routable skeleton of one aggregate query."""

    __slots__ = ("info", "binding", "dims", "agg_sigs", "where_cols",
                 "aliases")

    def __init__(self, info, binding, dims, agg_sigs, where_cols,
                 aliases):
        self.info = info
        self.binding = binding
        self.dims = dims              # ordered group dims, lower-cased
        self.agg_sigs = agg_sigs      # ordered deduplicated AggSigs
        self.where_cols = where_cols  # frozenset of predicate columns
        self.aliases = aliases        # select-item aliases, lower-cased


def _contains_exists(expr: Expr | None) -> bool:
    if expr is None:
        return False
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Exists):
            return True
        stack.extend(_children(node))
    return False


def _bare_refs(expr: Expr | None, out: list) -> None:
    """ColumnRefs *outside* aggregate calls (the refs that must be
    grouping dimensions or select aliases)."""
    if expr is None:
        return
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return
    if isinstance(expr, ColumnRef):
        out.append(expr)
        return
    for child in _children(expr):
        _bare_refs(child, out)


def _map_expr(expr: Expr, fn) -> Expr:
    """Structural rebuild with subtree interception: ``fn`` returns a
    replacement node or None to recurse (Parameter/Literal/Star nodes
    pass through untouched, preserving prepared-statement bindings)."""
    replaced = fn(expr)
    if replaced is not None:
        return replaced
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _map_expr(expr.left, fn),
                        _map_expr(expr.right, fn))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _map_expr(expr.operand, fn))
    if isinstance(expr, FuncCall):
        args = tuple(a if isinstance(a, Star) else _map_expr(a, fn)
                     for a in expr.args)
        return FuncCall(expr.name, args, expr.distinct)
    if isinstance(expr, CaseExpr):
        whens = tuple((_map_expr(c, fn), _map_expr(r, fn))
                      for c, r in expr.whens)
        else_result = (_map_expr(expr.else_result, fn)
                       if expr.else_result is not None else None)
        return CaseExpr(whens, else_result)
    if isinstance(expr, LikeExpr):
        return LikeExpr(_map_expr(expr.operand, fn), expr.pattern,
                        expr.negated)
    if isinstance(expr, InList):
        return InList(_map_expr(expr.operand, fn),
                      tuple(_map_expr(i, fn) for i in expr.items),
                      expr.negated)
    if isinstance(expr, Between):
        return Between(_map_expr(expr.operand, fn),
                       _map_expr(expr.low, fn),
                       _map_expr(expr.high, fn), expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(_map_expr(expr.operand, fn), expr.negated)
    return expr


def _display(expr: Expr) -> str:
    """The output name the raw planner would give an un-aliased item
    (resolution lower-cases column names before rendering)."""
    return render_expr(
        _rewrite(expr, lambda ref: ColumnRef(ref.name.lower())))


class QueryRouter:
    """Per-engine routing state: the hot-pattern log and the matching/
    rewriting logic. One instance lives on each :class:`~repro.engines.
    base.Database` as ``engine.router``."""

    def __init__(self, engine):
        self.engine = engine
        #: (table, dims-incl-predicates, agg sigs) -> times requested;
        #: feeds :meth:`repro.core.tuner.IdleTuner.rollup_candidates`.
        self.patterns: Counter = Counter()

    # ------------------------------------------------------------------
    def route(self, select: Select, optimizer: "Optimizer",
              ) -> tuple[PlannedQuery | None, str | None]:
        """Returns ``(plan, None)`` on a routed hit, ``(None, reason)``
        for an annotated fallback, ``(None, None)`` when routing does
        not apply (non-aggregate query, or no rollups registered)."""
        info = self._single_source(select)
        if info is None:
            return None, None
        shape, reason = self._shape(select, info)
        if shape is None and reason is None:
            return None, None  # not an aggregate query
        if shape is not None:
            self._observe(shape)
            zone = self._zone_fold(select, shape)
            if zone is not None:
                return zone, None
        if not len(self.engine.rollups):
            return None, None  # invisible until rollups exist
        if shape is None:
            return None, reason
        best, why_not = self._pick(self.engine.rollups.for_source(info),
                                   shape)
        if best is None:
            return None, why_not or "no rollup on table"
        probe = self._plan_probe(select, shape, best, optimizer)
        if probe is None:
            return None, f"{best.name}: probe planning failed"
        self.engine.model.rollup_hit()
        return probe, None

    # ------------------------------------------------------------------
    def _single_source(self, select: Select) -> TableInfo | None:
        if len(select.tables) != 1:
            return None
        name = select.tables[0].name
        catalog = self.engine.catalog
        if not catalog.has(name):
            return None
        return catalog.get(name)

    def _column_of(self, ref: ColumnRef, binding: str,
                   info: TableInfo) -> str | None:
        if ref.table is not None and ref.table.lower() != binding:
            return None
        name = ref.name.lower()
        return name if info.schema.has_column(name) else None

    def _shape(self, select: Select, info: TableInfo,
               ) -> tuple[_Shape | None, str | None]:
        aggs: list[FuncCall] = []
        seen: set[str] = set()

        def note(found) -> None:
            for agg in found:
                key = expr_key(agg)
                if key not in seen:
                    seen.add(key)
                    aggs.append(agg)

        for item in select.items:
            note(collect_aggregates(item.expr))
        note(collect_aggregates(select.having))
        for order in select.order_by:
            note(collect_aggregates(order.expr))
        if not aggs and not select.group_by:
            return None, None

        if any(isinstance(item.expr, Star) for item in select.items):
            return None, "SELECT *"
        binding = select.tables[0].binding.lower()
        aliases = frozenset(item.alias.lower() for item in select.items
                            if item.alias)
        alias_exprs = {item.alias.lower(): item.expr
                      for item in select.items if item.alias}

        dims: list[str] = []
        for group in select.group_by:
            expr = group
            if (isinstance(expr, ColumnRef) and expr.table is None
                    and not info.schema.has_column(expr.name.lower())):
                expr = alias_exprs.get(expr.name.lower(), expr)
            if not isinstance(expr, ColumnRef):
                return None, "non-column group expression"
            column = self._column_of(expr, binding, info)
            if column is None:
                return None, "unresolved group column"
            if column not in dims:
                dims.append(column)

        agg_sigs: list[tuple[str, str]] = []
        for agg in aggs:
            if agg.name not in _ROUTABLE_FUNCS:
                return None, f"unsupported aggregate {agg.name!r}"
            if agg.distinct:
                return None, "DISTINCT aggregate"
            if agg.name == "count" and (
                    not agg.args or isinstance(agg.args[0], Star)):
                sig = ("count", "*")
            else:
                if len(agg.args) != 1 or \
                        not isinstance(agg.args[0], ColumnRef):
                    return None, "aggregate over expression"
                column = self._column_of(agg.args[0], binding, info)
                if column is None:
                    return None, "unresolved aggregate column"
                sig = (agg.name, column)
            if sig not in agg_sigs:
                agg_sigs.append(sig)

        if _contains_exists(select.where) or \
                _contains_exists(select.having):
            return None, "subquery predicate"
        where_cols: set[str] = set()
        for ref in collect_column_refs(select.where):
            column = self._column_of(ref, binding, info)
            if column is None:
                return None, "unresolved predicate column"
            where_cols.add(column)

        dim_set = set(dims)
        bare: list[ColumnRef] = []
        for item in select.items:
            _bare_refs(item.expr, bare)
        _bare_refs(select.having, bare)
        for order in select.order_by:
            _bare_refs(order.expr, bare)
        for ref in bare:
            column = self._column_of(ref, binding, info)
            if column in dim_set:
                continue
            if column is None and ref.table is None and \
                    ref.name.lower() in aliases:
                continue
            return None, "ungrouped column"

        return _Shape(info, binding, tuple(dims), tuple(agg_sigs),
                      frozenset(where_cols), aliases), None

    # ------------------------------------------------------------------
    def _observe(self, shape: _Shape) -> None:
        key = (shape.info.name.lower(),
               tuple(sorted(set(shape.dims) | shape.where_cols)),
               tuple(sorted(shape.agg_sigs)))
        self.patterns[key] += 1

    # ------------------------------------------------------------------
    def _pick(self, candidates: list[RollupInfo], shape: _Shape,
              ) -> tuple[RollupInfo | None, str | None]:
        best = None
        reasons = []
        for rollup in candidates:
            why = self._covers(rollup, shape)
            if why is None:
                if best is None or rollup.row_count < best.row_count:
                    best = rollup
            else:
                reasons.append(f"{rollup.name}: {why}")
        if best is not None:
            return best, None
        return None, "; ".join(reasons) if reasons else None

    def _covers(self, rollup: RollupInfo, shape: _Shape) -> str | None:
        if not rollup.is_fresh(self.engine.catalog):
            return "stale"
        needed_dims = set(shape.dims) | shape.where_cols
        if not needed_dims <= set(rollup.dims):
            return "dimensions not covered"
        for sig in shape.agg_sigs:
            if not rollup.provides(sig):
                return f"missing {sig[0]}({sig[1]})"
        if set(rollup.dims) != set(shape.dims):
            # The probe re-aggregates multiple stored groups per output
            # group; float addition order would differ from the raw scan.
            for func, column in shape.agg_sigs:
                if func in ("sum", "avg") and \
                        shape.info.schema.column(column).dtype.family \
                        == "float":
                    return "float re-aggregation"
        return None

    # ------------------------------------------------------------------
    def _plan_probe(self, select: Select, shape: _Shape,
                    rollup: RollupInfo, optimizer: "Optimizer",
                    ) -> PlannedQuery | None:
        # The raw plan's aggregation strategy decides group-row order;
        # pin the probe to it. Planning is plan-time-only work — the
        # probe's saving is in execution, which never touches the raw
        # file.
        raw = Planner(self.engine.catalog, self.engine.model,
                      optimizer).plan(select)
        strategy = self._agg_strategy_of(raw.describe()) or "hash"
        try:
            probe_select = self._rewrite_select(select, shape, rollup)
            catalog = Catalog()
            catalog.register(rollup.table)
            forced = ForcedAggOptimizer(optimizer.use_stats, strategy)
            planned = Planner(catalog, self.engine.model,
                              forced).plan(probe_select)
        except ReproError:  # pragma: no cover - defensive fallback
            return None
        return RoutedQuery(planned.root, planned.names, rollup.name)

    def _agg_strategy_of(self, plan: dict) -> str | None:
        if plan.get("op") == "Aggregate":
            return plan.get("strategy")
        for value in plan.values():
            if isinstance(value, dict):
                found = self._agg_strategy_of(value)
                if found is not None:
                    return found
        return None

    def _rewrite_select(self, select: Select, shape: _Shape,
                        rollup: RollupInfo) -> Select:
        rollup_cols = set(rollup.dims) | set(rollup.storage.values())
        aliases = shape.aliases
        global_agg = not select.group_by

        def fn(expr):
            if isinstance(expr, FuncCall) and expr.is_aggregate:
                return self._rewrite_agg(expr, rollup, global_agg)
            if isinstance(expr, ColumnRef):
                name = expr.name.lower()
                if name in rollup_cols:
                    return ColumnRef(name)
                if expr.table is None and name in aliases:
                    return expr  # resolves against the probe's items
                return ColumnRef(name)
            return None

        items = [SelectItem(_map_expr(item.expr, fn),
                            item.alias or _display(item.expr))
                 for item in select.items]
        probe = Select(
            items=items,
            tables=[TableRef(rollup.table.name)],
            where=(_map_expr(select.where, fn)
                   if select.where is not None else None),
            group_by=[_map_expr(g, fn) for g in select.group_by],
            having=(_map_expr(select.having, fn)
                    if select.having is not None else None),
            order_by=[OrderItem(_map_expr(o.expr, fn), o.descending)
                      for o in select.order_by],
            limit=select.limit,
        )
        probe.param_count = select.param_count
        probe.binding = select.binding
        return probe

    def _rewrite_agg(self, agg: FuncCall, rollup: RollupInfo,
                     global_agg: bool) -> Expr:
        sig = agg_signature(agg)
        func, column = sig
        storage = rollup.storage
        if func == "count":
            # SUM over an empty input is NULL where COUNT is 0: a
            # global probe over a filtered-empty rollup must still say 0.
            inner = FuncCall("sum", (ColumnRef(storage[sig]),))
            if global_agg:
                return CaseExpr(((IsNull(inner), Literal(0)),), inner)
            return inner
        if func == "avg":
            total = FuncCall("sum", (ColumnRef(storage[("sum", column)]),))
            count = FuncCall("sum",
                             (ColumnRef(storage[("count", column)]),))
            return BinaryOp("/", total, count)
        return FuncCall("sum" if func == "sum" else func,
                        (ColumnRef(storage[sig]),))

    # ------------------------------------------------------------------
    # Zone-map aggregate fold (opt-in)
    # ------------------------------------------------------------------
    def _zone_fold(self, select: Select,
                   shape: _Shape) -> PlannedQuery | None:
        config = getattr(self.engine, "config", None)
        if not getattr(config, "enable_zone_aggregates", False):
            return None
        if select.group_by or select.where is not None or \
                select.having is not None or select.order_by:
            return None
        parts = getattr(shape.info.access, "parts", None)
        if parts is None or not parts:
            return None
        values = []
        for item in select.items:
            expr = item.expr
            if not (isinstance(expr, FuncCall) and expr.is_aggregate):
                return None
            value = self._fold_one(expr, shape.info, parts)
            if value is _NO_FOLD:
                return None
            values.append(value)
        model = self.engine.model
        layout = {expr_key(item.expr): i
                  for i, item in enumerate(select.items)}
        names = [item.alias or _display(item.expr)
                 for item in select.items]
        root: PlanOp = ZoneAggregateOp(model, layout, tuple(values),
                                       shape.info.name, len(parts))
        if select.limit is not None:
            root = LimitOp(model, root, select.limit)
        return PlannedQuery(root, names)

    def _fold_one(self, agg: FuncCall, info: TableInfo, parts):
        sig = agg_signature(agg)
        func, column = sig
        if sig == ("count", "*"):
            total = 0
            for part in parts:
                if getattr(part, "empty", False):
                    continue
                if part.row_count is None:
                    return _NO_FOLD  # a file without a harvested count
                total += part.row_count
            return total
        if func not in ("min", "max") or column == "*":
            return _NO_FOLD
        if not info.schema.has_column(column):
            return _NO_FOLD
        extremes = []
        for part in parts:
            bounds = part.bounds_of(column)
            if bounds is None:
                return _NO_FOLD  # zone unknown: the file must be read
            low, high = bounds
            side = low if func == "min" else high
            if side is not None:
                extremes.append(side)
        if not extremes:
            return None  # no non-NULL value anywhere, like the raw scan
        return min(extremes) if func == "min" else max(extremes)


_NO_FOLD = object()
