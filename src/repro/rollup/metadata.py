"""Rollup catalog objects: what is materialized, over what, how fresh.

A rollup stores *decomposable* aggregate state keyed by its dimension
columns: ``sum``/``count``/``min``/``max`` re-aggregate losslessly over
any grouping by a subset of the dimensions, and ``avg`` is carried as a
``sum``+``count`` pair. The physical storage column for each aggregate
signature is deterministic (``sum_x``, ``count_star``...), so the
router can rewrite query aggregates to storage-column expressions
without consulting the builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import CatalogError
from repro.sql.ast_nodes import ColumnRef, FuncCall, Star

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.catalog import Catalog, TableInfo

#: an aggregate's identity: ``(function, column)`` with ``"*"`` for
#: ``COUNT(*)`` — column names lower-cased.
AggSig = tuple[str, str]


def agg_signature(agg: FuncCall) -> AggSig:
    """The :data:`AggSig` of a parsed aggregate call. Only shapes the
    router/builder support reach here: ``count(*)`` or ``f(column)``."""
    if agg.name == "count" and (
            not agg.args or isinstance(agg.args[0], Star)):
        return ("count", "*")
    arg = agg.args[0]
    return (agg.name, arg.name.lower())


def storage_name(sig: AggSig) -> str:
    """Deterministic physical column for one stored aggregate."""
    func, col = sig
    if sig == ("count", "*"):
        return "count_star"
    return f"{func}_{col}"


def storage_signatures(sigs) -> list[AggSig]:
    """Expand requested signatures into the physically stored set:
    ``avg(x)`` becomes ``sum(x)`` + ``count(x)``; duplicates collapse,
    order of first mention is preserved."""
    out: list[AggSig] = []
    for sig in sigs:
        func, col = sig
        expanded = ([("sum", col), ("count", col)] if func == "avg"
                    else [sig])
        for phys in expanded:
            if phys not in out:
                out.append(phys)
    return out


def signature_expr(sig: AggSig) -> FuncCall:
    """The aggregate AST a signature denotes (for builds/rebuilds)."""
    func, col = sig
    if col == "*":
        return FuncCall("count", (Star(),))
    return FuncCall(func, (ColumnRef(col),))


@dataclass
class RollupInfo:
    """One materialized rollup and its freshness anchor.

    ``source`` is held by identity: a rename keeps it valid, while
    DROP + re-CREATE of the source yields a different
    :class:`~repro.sql.catalog.TableInfo` object and permanently
    invalidates the rollup (its contents describe a table that no
    longer exists)."""

    name: str
    source: "TableInfo"
    dims: tuple[str, ...]
    #: requested signatures as declared (``avg`` kept for rebuilds)
    agg_sigs: tuple[AggSig, ...]
    #: physically stored signature -> heap column name
    storage: dict[AggSig, str]
    #: the rollup's own (unregistered) heap-backed table
    table: "TableInfo"
    #: ``source.data_version`` captured when the build scanned it
    built_data_version: int
    row_count: int
    #: how many times this rollup has been (re)built — also the heap
    #: path sequence number, so rebuilds never reuse a buffered path
    builds: int = 1

    def is_fresh(self, catalog: "Catalog") -> bool:
        source = self.source
        return (catalog.has(source.name)
                and catalog.get(source.name) is source
                and source.data_version == self.built_data_version)

    def provides(self, sig: AggSig) -> bool:
        func, col = sig
        if func == "avg":
            return (("sum", col) in self.storage
                    and ("count", col) in self.storage)
        return sig in self.storage

    def covers(self, dims, sigs) -> bool:
        """Dimension-subset + aggregate coverage (freshness aside)."""
        return (set(dims) <= set(self.dims)
                and all(self.provides(s) for s in sigs))


class RollupRegistry:
    """Case-insensitive rollup namespace for one engine."""

    def __init__(self):
        self._rollups: dict[str, RollupInfo] = {}

    def register(self, info: RollupInfo) -> RollupInfo:
        key = info.name.lower()
        if key in self._rollups:
            raise CatalogError(f"rollup already registered: {info.name!r}")
        self._rollups[key] = info
        return info

    def drop(self, name: str) -> RollupInfo:
        key = name.lower()
        info = self._rollups.get(key)
        if info is None:
            raise CatalogError(f"unknown rollup: {name!r}")
        del self._rollups[key]
        return info

    def replace(self, info: RollupInfo) -> RollupInfo:
        """Swap in a rebuilt rollup under the same name."""
        self._rollups[info.name.lower()] = info
        return info

    def get(self, name: str) -> RollupInfo:
        info = self._rollups.get(name.lower())
        if info is None:
            raise CatalogError(f"unknown rollup: {name!r}")
        return info

    def has(self, name: str) -> bool:
        return name.lower() in self._rollups

    def rollups(self) -> list[RollupInfo]:
        return list(self._rollups.values())

    def for_source(self, source: "TableInfo") -> list[RollupInfo]:
        """Rollups whose source is ``source`` (by identity)."""
        return [r for r in self._rollups.values() if r.source is source]

    def drop_for_source(self, source: "TableInfo") -> list[RollupInfo]:
        """Unregister every rollup of ``source`` (DROP TABLE cascade);
        returns the dropped infos so storage can be reclaimed."""
        dropped = self.for_source(source)
        for info in dropped:
            del self._rollups[info.name.lower()]
        return dropped

    def __contains__(self, name: str) -> bool:
        return self.has(name)

    def __len__(self) -> int:
        return len(self._rollups)
