"""Materialized rollups: precomputed aggregate summaries of raw tables.

The paper's auxiliary structures (positional maps, caches, statistics)
amortize *access* cost; rollups amortize *computation*. A rollup is a
small heap table holding one row per combination of dimension values
with decomposable aggregate state (sums, counts, mins, maxes), built in
a single pass over the source — during ``CREATE ROLLUP`` DDL or the
§7-style idle-time tuner — and stored through the ``heap`` format
adapter. The query router rewrites covered aggregate queries to probe
the rollup instead of rescanning the raw file, with bit-identical
results and staleness tracked against the source table's data version.
"""

from repro.rollup.metadata import RollupInfo, RollupRegistry, agg_signature
from repro.rollup.router import QueryRouter, RoutedQuery, ZoneAggregateOp

__all__ = [
    "RollupInfo",
    "RollupRegistry",
    "agg_signature",
    "QueryRouter",
    "RoutedQuery",
    "ZoneAggregateOp",
]
