"""Single-pass rollup construction through the heap format adapter.

A build is just a query: the requested dimensions become a GROUP BY,
the stored aggregate state becomes the select list, and the result is
materialized via the ``heap`` adapter's row channel — every character
touched, converted and serialized is charged to the engine's clock like
any other scan + load. The aggregation strategy is pinned to ``hash``
so the heap's physical row order is the *first-seen group order of the
raw file*, the invariant the router's bit-identity argument rests on.
"""

from __future__ import annotations

from repro.errors import CatalogError
from repro.rollup.metadata import (
    RollupInfo,
    agg_signature,
    signature_expr,
    storage_name,
    storage_signatures,
)
from repro.sql.ast_nodes import ColumnRef, Select, SelectItem, TableRef
from repro.sql.batch import batches_to_rows
from repro.sql.catalog import Column, Schema, TableInfo
from repro.sql.datatypes import BIGINT, FLOAT
from repro.sql.executor import execute_batches
from repro.sql.optimizer import Optimizer
from repro.sql.planner import Planner


class ForcedAggOptimizer(Optimizer):
    """An optimizer whose aggregation strategy is pinned.

    Builds pin ``hash`` (first-seen storage order); probes pin whatever
    strategy the raw plan would have used, so routed output order
    matches the raw scan's bit for bit."""

    def __init__(self, use_stats: bool, strategy: str):
        super().__init__(use_stats=use_stats)
        self._forced = strategy

    def agg_strategy(self, info_for_group_cols, input_rows,
                     has_group_by) -> str:
        return self._forced


def rollup_heap_path(engine, name: str, seq: int) -> str:
    """Sequence-numbered placement: rebuilds never reuse a path, so no
    stale buffer-pool page can ever serve a rebuilt rollup."""
    return f"__rollup__/{engine.name}/{name.lower()}-{seq}.heap"


def _validate_spec(source, dims, aggs):
    schema = source.schema
    seen = set()
    for dim in dims:
        key = dim.lower()
        if key in seen:
            raise CatalogError(
                f"duplicate rollup dimension {dim!r}")
        seen.add(key)
        if not schema.has_column(key):
            raise CatalogError(
                f"rollup dimension {dim!r} is not a column of "
                f"{source.name!r}")
    sigs = []
    for agg in aggs:
        sig = agg_signature(agg)
        func, col = sig
        if col != "*":
            if not schema.has_column(col):
                raise CatalogError(
                    f"rollup aggregate column {col!r} is not a column "
                    f"of {source.name!r}")
            if func in ("sum", "avg") and \
                    schema.column(col).dtype.family not in ("int", "float"):
                raise CatalogError(
                    f"{func}({col}) needs a numeric column; "
                    f"{col!r} is {schema.column(col).dtype.name}")
        if sig not in sigs:
            sigs.append(sig)
    if not sigs:
        raise CatalogError("a rollup needs at least one aggregate")
    return sigs


def _storage_dtype(sig, schema):
    func, col = sig
    if func == "count":
        return BIGINT
    if func == "sum":
        family = schema.column(col).dtype.family
        return BIGINT if family == "int" else FLOAT
    return schema.column(col).dtype  # min/max keep the source type


def build_rollup(engine, name: str, source: TableInfo, dims, aggs,
                 builds: int = 1) -> RollupInfo:
    """Scan ``source`` once and materialize the rollup heap; returns
    the registry entry (not yet registered)."""
    sigs = _validate_spec(source, dims, aggs)
    dims = tuple(d.lower() for d in dims)
    phys = storage_signatures(sigs)
    storage = {sig: storage_name(sig) for sig in phys}

    # Pick up pending external file changes *before* snapshotting the
    # freshness anchor, so the build can never capture a version newer
    # than the data it scanned.
    refresh = getattr(source.access, "refresh", None)
    if refresh is not None:
        refresh()
    built_data_version = source.data_version

    select = Select(
        items=[SelectItem(ColumnRef(d), alias=d) for d in dims]
        + [SelectItem(signature_expr(sig), alias=storage[sig])
           for sig in phys],
        tables=[TableRef(source.name)],
        group_by=[ColumnRef(d) for d in dims],
    )
    optimizer = ForcedAggOptimizer(engine.use_statistics, "hash")
    planned = Planner(engine.catalog, engine.model, optimizer).plan(select)
    rows = list(batches_to_rows(execute_batches(planned)))

    schema = Schema(
        [Column(d, source.schema.column(d).dtype) for d in dims]
        + [Column(storage[sig], _storage_dtype(sig, source.schema))
           for sig in phys])

    from repro.formats.registry import get_format

    table = TableInfo(name=name, schema=schema, format="heap")
    adapter = get_format("heap")
    options = adapter.validate_options(
        engine, {"_rows": rows,
                 "_path": rollup_heap_path(engine, name, builds)})
    table.access = adapter.build_access(engine, table, options)

    return RollupInfo(name=name, source=source, dims=dims,
                      agg_sigs=tuple(sigs), storage=storage, table=table,
                      built_data_version=built_data_version,
                      row_count=len(rows), builds=builds)


def rebuild_rollup(engine, rollup: RollupInfo) -> RollupInfo:
    """Re-run a stale rollup's build against the current source data
    and swap the registry entry; the old heap is reclaimed."""
    fresh = build_rollup(
        engine, rollup.name, rollup.source, rollup.dims,
        [signature_expr(sig) for sig in rollup.agg_sigs],
        builds=rollup.builds + 1)
    engine.rollups.replace(fresh)
    drop_storage(engine, rollup)
    engine.catalog.bump_epoch()
    return fresh


def drop_storage(engine, rollup: RollupInfo) -> None:
    """Reclaim a rollup's heap + toast files and any buffered pages."""
    path = rollup.table.path
    if path:
        engine.materialization_pool().invalidate(path)
        for victim in (path, path + ".toast"):
            if engine.vfs.exists(victim):
                engine.vfs.delete(victim)
    rollup.table.access = None
