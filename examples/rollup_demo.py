"""Materialized rollups and CTAS: amortizing computation, not access.

The positional map and cache (§4) amortize *getting to* the raw bytes;
a rollup amortizes the *aggregation itself*. This demo registers a raw
CSV, lets the engine observe a hot GROUP BY pattern, materializes a
rollup (by hand and via idle-time tuning), and shows the router
answering covered aggregates bit-identically at a fraction of the
cost — then falling back transparently when an append makes the rollup
stale, and recovering after an idle rebuild.

Run:  python examples/rollup_demo.py
"""

import random

from repro import PostgresRaw, VirtualFS
from repro.core.tuner import IdleTuner

ROWS = 8_000
REGIONS = ["east", "west", "north", "south"]
PRODUCTS = ["apple", "pear", "fig", "plum", "kiwi"]

HOT = ("SELECT region, product, count(*), sum(qty), avg(price) "
       "FROM sales GROUP BY region, product")


def sales_csv(rows: int, seed: int = 9) -> bytes:
    rng = random.Random(seed)
    return "".join(
        f"{rng.choice(REGIONS)},{rng.choice(PRODUCTS)},"
        f"{rng.randint(1, 50)},{rng.randint(100, 5000) / 100.0}\n"
        for _ in range(rows)
    ).encode()


def show(label: str, result) -> None:
    routing = result.plan.get("rollup", "-")
    print(f"  {label:<28}{result.elapsed:>10.5f}s   rollup: {routing}")


def main() -> None:
    vfs = VirtualFS()
    vfs.create("sales.csv", sales_csv(ROWS))
    db = PostgresRaw(vfs=vfs)
    db.query("CREATE TABLE sales (region VARCHAR, product VARCHAR, "
             "qty INTEGER, price FLOAT) USING csv "
             "OPTIONS (path 'sales.csv')")

    print(f"== raw aggregate over {ROWS} rows (cold, then warm) ==")
    show("cold GROUP BY", db.query(HOT))
    warm = db.query(HOT)
    show("warm GROUP BY", warm)

    print("\n== CREATE ROLLUP: materialize the hot pattern ==")
    status = db.query("CREATE ROLLUP hot ON sales (region, product) "
                      "AGG (count(*), sum(qty), avg(price))")
    print(f"  {status.rows[0][0]}")
    hit = db.query(HOT)
    show("routed GROUP BY", hit)
    assert hit.rows == warm.rows  # bit-identical: values AND order
    print(f"  -> identical rows, {warm.elapsed / hit.elapsed:.0f}x "
          f"cheaper than the warm raw aggregate")

    coarser = db.query("SELECT region, sum(qty) FROM sales "
                       "GROUP BY region")
    show("coarser grouping", coarser)
    miss = db.query("SELECT qty, count(*) FROM sales GROUP BY qty")
    show("uncovered grouping", miss)

    print("\n== staleness: an append invalidates, idle time rebuilds ==")
    vfs.append_bytes("sales.csv", sales_csv(200, seed=31))
    stale = db.query(HOT)
    show("after append", stale)
    report = IdleTuner(db).exploit_idle_time_for_rollups(
        budget_seconds=60.0)
    print(f"  idle tuner: rebuilt {report.rebuilt}, built "
          f"{report.built} ({report.seconds_used:.4f} virtual s)")
    show("after rebuild", db.query(HOT))

    print("\n== idle tuning proposes rollups from the pattern log ==")
    for _ in range(3):
        db.query("SELECT product, max(price) FROM sales GROUP BY product")
    proposals = IdleTuner(db).rollup_candidates()
    for p in proposals:
        print(f"  proposal: {p.table} ({', '.join(p.dims)}) "
              f"aggs={p.aggs} seen {p.requests}x")
    report = IdleTuner(db).exploit_idle_time_for_rollups(60.0)
    print(f"  idle tuner: built {report.built}")
    show("auto-rollup hit", db.query(
        "SELECT product, max(price) FROM sales GROUP BY product"))

    print("\n== CTAS: freeze any result as a queryable heap table ==")
    status = db.query("CREATE TABLE region_totals AS "
                      "SELECT region, sum(qty) AS total FROM sales "
                      "GROUP BY region ORDER BY total DESC")
    print(f"  {status.rows[0][0]}")
    for region, total in db.query("SELECT * FROM region_totals").rows:
        print(f"    {region:<8}{total:>8}")

    print("\ncounters:", {k: v for k, v in db.counters().items()
                          if k.startswith("rollup_")})


if __name__ == "__main__":
    main()
