"""JSON Lines in situ: one more raw format, zero engine changes.

The adapter registry is the point of this demo: ``USING jsonl`` binds a
format that was added purely through the public
:func:`repro.formats.register_format` surface — the planner, catalog
and engines were not edited for it — yet it gets the full NoDB
treatment: adaptive positional map (line index + member-value
positions), binary cache, on-the-fly statistics, selective parsing.

The demo queries the same logical data as CSV and as JSONL, shows the
results agree, and shows the warm-scan counters collapsing for both.

Run:  PYTHONPATH=src python examples/jsonl_demo.py
"""

import random

import repro
from repro import VirtualFS
from repro.formats import available_formats
from repro.formats.jsonl import write_jsonl


def main() -> None:
    print("registered formats:", ", ".join(available_formats()), "\n")

    rng = random.Random(11)
    rows = [
        {
            "id": i,
            "station": f"st-{rng.randrange(8)}",
            "temp": round(rng.uniform(-10, 35), 2),
            "ok": rng.random() > 0.1,
        }
        for i in range(4000)
    ]

    vfs = VirtualFS()
    write_jsonl(rows, vfs, "readings.jsonl")
    vfs.create("readings.csv", "".join(
        f"{r['id']},{r['station']},{r['temp']},{r['ok']}\n"
        for r in rows).encode())

    session = repro.connect(vfs=vfs)
    ddl_columns = "id INTEGER, station VARCHAR, temp FLOAT, ok BOOLEAN"
    session.execute(f"CREATE TABLE readings_j ({ddl_columns}) "
                    "USING jsonl OPTIONS (path 'readings.jsonl')")
    session.execute(f"CREATE TABLE readings_c ({ddl_columns}) "
                    "USING csv OPTIONS (path 'readings.csv')")
    print("tables:", session.execute("SHOW TABLES").fetchall(), "\n")

    predicate = "WHERE temp > 20 AND ok = true"
    for table in ("readings_j", "readings_c"):
        q = (f"SELECT station, count(*), avg(temp) FROM {table} "
             f"{predicate} GROUP BY station ORDER BY station")
        cold = session.query(q)
        warm = session.query(q)
        assert cold.rows == warm.rows
        print(f"{table}:")
        print(f"   first 3 groups: {cold.rows[:3]}")
        print(f"   cold: {cold.elapsed * 1000:8.2f} ms  "
              f"tokenize={cold.counters.get('tokenize', 0):9.0f}  "
              f"newline_scan={cold.counters.get('newline_scan', 0):8.0f}")
        print(f"   warm: {warm.elapsed * 1000:8.2f} ms  "
              f"tokenize={warm.counters.get('tokenize', 0):9.0f}  "
              f"newline_scan={warm.counters.get('newline_scan', 0):8.0f}  "
              f"({cold.elapsed / warm.elapsed:.1f}x)")

    jq = ("SELECT station, count(*), avg(temp) FROM readings_j "
          f"{predicate} GROUP BY station ORDER BY station")
    cq = jq.replace("readings_j", "readings_c")
    assert session.query(jq).rows == session.query(cq).rows
    print("\nJSONL and CSV agree on every group "
          "(differential harness: tests/test_jsonl.py)")

    engine = session.engine
    positional_map = engine.positional_map_of("readings_j")
    print(f"\nJSONL positional map: {positional_map.known_line_count} "
          f"indexed lines, value positions for attrs "
          f"{positional_map.indexed_attrs(0)} in block 0, "
          f"{positional_map.bytes_used:,} B; "
          f"cache {engine.cache_of('readings_j').bytes_used:,} B")
    session.close()


if __name__ == "__main__":
    main()
