"""TPC-H on raw files: the §5.2 experiment as a demo.

Generates a miniature TPC-H dataset as eight CSV files, then runs the
paper's query subset on PostgresRaw (no loading) and on a
PostgreSQL-like loaded engine, reporting per-query virtual times and
the cumulative data-to-answer time including the load.

Run:  python examples/tpch_demo.py
"""

from repro import LoadedDBMS, PostgresRaw, VirtualFS
from repro.workloads.tpch import (
    PAPER_QUERIES,
    generate_tpch,
    tpch_query,
    tpch_schema,
)

SCALE_FACTOR = 0.001  # ~6000 lineitem rows; shapes match SF-10


def main() -> None:
    vfs = VirtualFS()
    print(f"generating TPC-H at SF={SCALE_FACTOR} ...")
    data = generate_tpch(vfs, scale_factor=SCALE_FACTOR, seed=0)
    for table, count in sorted(data.row_counts.items()):
        print(f"  {table:<10} {count:>7} rows")

    raw = PostgresRaw(vfs=vfs)
    loaded = LoadedDBMS(vfs=vfs)
    for table, path in data.paths.items():
        raw.register_csv(table, path, tpch_schema(table))
    load_time = sum(loaded.load_csv(t, p, tpch_schema(t))
                    for t, p in data.paths.items())
    print(f"\nPostgreSQL load time: {load_time:.2f}s — "
          "PostgresRaw skipped this entirely\n")

    print(f"{'query':<7}{'PostgresRaw':>13}{'PostgreSQL':>13}   match")
    raw_total, loaded_total = 0.0, load_time
    for name in PAPER_QUERIES:
        sql = tpch_query(name)
        raw_result = raw.query(sql)
        loaded_result = loaded.query(sql)
        raw_total += raw_result.elapsed
        loaded_total += loaded_result.elapsed
        match = (sorted(map(repr, raw_result.rows))
                 == sorted(map(repr, loaded_result.rows)))
        shape = "yes" if match else "~float"
        print(f"{name:<7}{raw_result.elapsed:>12.3f}s"
              f"{loaded_result.elapsed:>12.3f}s   {shape}")

    print("-" * 42)
    print(f"{'total':<7}{raw_total:>12.3f}s{loaded_total:>12.3f}s"
          "   (loaded total includes the load)")

    # Warm runs: the paper's Fig 10 situation.
    print("\nwarm re-run (structures populated):")
    for name in ("q1", "q6", "q14"):
        warm = raw.query(tpch_query(name))
        print(f"  {name}: {warm.elapsed:.3f}s")


if __name__ == "__main__":
    main()
