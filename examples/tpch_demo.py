"""TPC-H on raw files: the §5.2 experiment as a demo.

Generates a miniature TPC-H dataset as eight CSV files, then runs the
paper's query subset through two sessions — one on PostgresRaw (no
loading) and one on a PostgreSQL-like loaded engine — reporting
per-query virtual times (each query's own cost ledger, courtesy of the
per-job accounting in the session scheduler) and the cumulative
data-to-answer time including the load.

Run:  PYTHONPATH=src python examples/tpch_demo.py
"""

import repro
from repro import LoadedDBMS, PostgresRaw, VirtualFS
from repro.workloads.tpch import (
    PAPER_QUERIES,
    generate_tpch,
    tpch_query,
    tpch_schema,
)

SCALE_FACTOR = 0.001  # ~6000 lineitem rows; shapes match SF-10


def main() -> None:
    vfs = VirtualFS()
    print(f"generating TPC-H at SF={SCALE_FACTOR} ...")
    data = generate_tpch(vfs, scale_factor=SCALE_FACTOR, seed=0)
    for table, count in sorted(data.row_counts.items()):
        print(f"  {table:<10} {count:>7} rows")

    raw = repro.connect(engine=PostgresRaw(vfs=vfs))
    loaded_engine = LoadedDBMS(vfs=vfs)
    for table, path in data.paths.items():
        raw.register_csv(table, path, tpch_schema(table))
    load_time = sum(loaded_engine.load_csv(t, p, tpch_schema(t))
                    for t, p in data.paths.items())
    loaded = repro.connect(engine=loaded_engine)
    print(f"\nPostgreSQL load time: {load_time:.2f}s — "
          "PostgresRaw skipped this entirely\n")

    print(f"{'query':<7}{'PostgresRaw':>13}{'PostgreSQL':>13}   match")
    raw_total, loaded_total = 0.0, load_time
    for name in PAPER_QUERIES:
        sql = tpch_query(name)
        raw_result = raw.query(sql)
        loaded_result = loaded.query(sql)
        raw_total += raw_result.elapsed
        loaded_total += loaded_result.elapsed
        match = (sorted(map(repr, raw_result.rows))
                 == sorted(map(repr, loaded_result.rows)))
        shape = "yes" if match else "~float"
        print(f"{name:<7}{raw_result.elapsed:>12.3f}s"
              f"{loaded_result.elapsed:>12.3f}s   {shape}")

    print("-" * 42)
    print(f"{'total':<7}{raw_total:>12.3f}s{loaded_total:>12.3f}s"
          "   (loaded total includes the load)")

    # Warm re-runs: the paper's Fig 10 situation. The statements were
    # cached by the session above, so these skip parse/plan entirely.
    print("\nwarm re-run (structures populated, statements cached):")
    for name in ("q1", "q6", "q14"):
        warm = raw.query(tpch_query(name))
        print(f"  {name}: {warm.elapsed:.3f}s")

    # Per-session accounting: each client's share of the engines' work.
    print(f"\nsession ledgers: raw {raw.elapsed():.3f}s over "
          f"{raw.stats['queries']} queries "
          f"({raw.stats['statement_cache_hits']} statement-cache hits); "
          f"loaded {loaded.elapsed():.3f}s")

    raw.close()
    loaded.close()


if __name__ == "__main__":
    main()
