"""Partitioned tables: a month of daily files, one glob, file pruning.

A table declared over ``events-*.csv`` binds one child access method
per matching file through the format registry. Every file accumulates
its own NoDB auxiliary structures, and — the point of this demo — a
per-file zone map (exact min/max per attribute, harvested from the
statistics reservoirs the first time the file is scanned). Selective
predicates then skip whole files: the second run of the date-range
query below touches 3 files out of 30 and the virtual clock shows the
saving.

``partition_by 'd from filename'`` goes further: the filename's
wildcard text is declared to be the column's value for every row, so
pruning works before any file has ever been read.

Run:  PYTHONPATH=src python examples/partitioned_demo.py
"""

import random

import repro
from repro import VirtualFS


def main() -> None:
    rng = random.Random(23)
    vfs = VirtualFS()
    for day in range(1, 31):
        lines = "".join(
            f"2024-06-{day:02d},{rng.randrange(1000)},"
            f"{rng.uniform(0, 100):.2f}\n"
            for _ in range(200))
        vfs.create(f"events-2024-06-{day:02d}.csv", lines.encode())

    session = repro.connect(vfs=vfs)
    session.execute(
        "CREATE TABLE IF NOT EXISTS events "
        "(d DATE, user_id INTEGER, v FLOAT) "
        "USING csv OPTIONS (path 'events-*.csv', "
        "partition_by 'd from filename')")

    range_sql = ("SELECT count(*), sum(v) FROM events "
                 "WHERE d BETWEEN DATE '2024-06-10' "
                 "AND DATE '2024-06-12'")

    # Cold — but partition_by already knows each file's day: 3 of the
    # 30 files are read, the other 27 are pruned without a byte.
    cur = session.execute(range_sql)
    print("3-day window:", cur.fetchall())
    counters = cur.counters()
    print(f"  files scanned: {counters.get('files_scanned', 0):.0f}, "
          f"pruned: {counters.get('files_pruned', 0):.0f}")

    # One full scan harvests zone maps for the *other* columns too...
    session.execute("SELECT user_id, v FROM events").fetchall()

    # ...so now a selective range on a data column prunes as well.
    cur = session.execute("SELECT d FROM events WHERE v > 99.9")
    spikes = cur.fetchall()
    counters = cur.counters()
    print(f"v > 99.9 on warm zones: {len(spikes)} rows, "
          f"files scanned: {counters.get('files_scanned', 0):.0f}, "
          f"pruned: {counters.get('files_pruned', 0):.0f}")

    for line, in session.execute("EXPLAIN " + range_sql).fetchall():
        print(" ", line)

    session.execute("DROP TABLE IF EXISTS events")
    session.close()


if __name__ == "__main__":
    main()
