"""The data-to-query race: NoDB vs load-first vs external files.

Reproduces Figure 1's story with real engines on the same machine: a
fresh data file arrives, and three database philosophies race to answer
a stream of queries:

* PostgresRaw       — query immediately, learn as you go (NoDB)
* PostgreSQL/MySQL  — load everything first, then query fast
* MySQL CSV engine  — query immediately, learn nothing

Run:  python examples/data_to_query_race.py
"""

from repro import (
    CSV_ENGINE_PROFILE,
    MYSQL_PROFILE,
    ExternalFilesDBMS,
    LoadedDBMS,
    PostgresRaw,
    VirtualFS,
)
from repro.workloads.micro import generate_micro_csv
from repro.workloads.queries import selectivity_query

ROWS = 3000
ATTRS = 30
N_QUERIES = 8


def main() -> None:
    vfs = VirtualFS()
    schema = generate_micro_csv(vfs, "data.csv", ROWS, ATTRS, seed=1)

    postgres_raw = PostgresRaw(vfs=vfs)
    postgres_raw.register_csv("data", "data.csv", schema)

    postgresql = LoadedDBMS(vfs=vfs)
    load_time = postgresql.load_csv("data", "data.csv", schema)

    mysql = LoadedDBMS(profile=MYSQL_PROFILE, vfs=vfs)
    mysql_load = mysql.load_csv("data", "data.csv", schema)

    csv_engine = ExternalFilesDBMS(profile=CSV_ENGINE_PROFILE, vfs=vfs)
    csv_engine.register_csv("data", "data.csv", schema)

    queries = [selectivity_query("data", ATTRS, sel, proj)
               for sel, proj in [(1.0, 1.0), (0.8, 0.8), (0.6, 0.6),
                                 (0.4, 0.5), (0.2, 0.4), (0.1, 0.3),
                                 (0.05, 0.2), (0.01, 0.1)]]

    print(f"load time: PostgreSQL {load_time:.2f}s, MySQL "
          f"{mysql_load:.2f}s, PostgresRaw/CSV-engine 0.00s\n")
    header = (f"{'query':<6}{'PostgresRaw':>13}{'PostgreSQL':>13}"
              f"{'MySQL':>13}{'CSV engine':>13}")
    print(header)
    print("-" * len(header))

    cumulative = {"PostgresRaw": 0.0, "PostgreSQL": load_time,
                  "MySQL": mysql_load, "CSV engine": 0.0}
    for i, q in enumerate(queries, 1):
        times = {
            "PostgresRaw": postgres_raw.query(q).elapsed,
            "PostgreSQL": postgresql.query(q).elapsed,
            "MySQL": mysql.query(q).elapsed,
            "CSV engine": csv_engine.query(q).elapsed,
        }
        for name, t in times.items():
            cumulative[name] += t
        print(f"Q{i:<5}" + "".join(
            f"{times[name]:>12.3f}s" for name in
            ("PostgresRaw", "PostgreSQL", "MySQL", "CSV engine")))

    print("-" * len(header))
    print("total ", "".join(
        f"{cumulative[name]:>12.3f}s" for name in
        ("PostgresRaw", "PostgreSQL", "MySQL", "CSV engine")),
        " (including load)")

    winner = min(cumulative, key=cumulative.get)
    print(f"\nfirst to finish all {N_QUERIES} queries: {winner}")
    print("PostgresRaw answered its first query while the loaded "
          "engines were still loading — the Figure 1 story.")


if __name__ == "__main__":
    main()
