"""The engine as a network service: tenants, quotas, metrics.

Everything the in-process sessions can do — execute with ``?`` params,
prepared statements, streaming fetches, structured errors — works over
a socket: a :class:`~repro.server.QueryServer` multiplexes any number
of client connections onto one engine's admission scheduler, bills
every connection to a named *tenant*, and exposes the engine's live
resource-utilization ledger over HTTP.

The demo starts a server over a raw CSV, declares two tenants with
very different virtual-second quotas, lets both query until the small
one is cut off at the admission gate (``QUOTA_EXCEEDED`` — typed,
with the ledger in the error context), and then scrapes ``/health``
and ``/metrics`` exactly the way an operator's ``curl`` would.

Run:  PYTHONPATH=src python examples/server_demo.py
"""

import json
import urllib.request

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.api.exceptions import OperationalError
from repro.server import QueryServer, TenantRegistry, wire_connect
from repro.workloads.micro import generate_micro_csv

SQL = "SELECT a1, a3, count(*) FROM m WHERE a1 > ? GROUP BY a1, a3"


def build_engine() -> PostgresRaw:
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", rows=1500, nattrs=6, seed=1)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=128), vfs=vfs)
    columns = ", ".join(f"a{i} INTEGER" for i in range(1, 7))
    engine.query(f"CREATE TABLE m ({columns}) "
                 "USING csv OPTIONS (path 'm.csv')")
    return engine


def main() -> None:
    # Two tenants: "research" has a generous virtual-second budget,
    # "intern" a tiny one — a cold scan plus a handful of warm queries.
    tenants = TenantRegistry()
    tenants.declare("research", quota=10_000.0)
    tenants.declare("intern", quota=0.008)

    with QueryServer(build_engine(), tenants=tenants) as server:
        print(f"server on 127.0.0.1:{server.port}, "
              f"metrics on :{server.metrics_port}")

        research = wire_connect("127.0.0.1", server.port, tenant="research")
        intern = wire_connect("127.0.0.1", server.port, tenant="intern")

        # Both tenants work; the engine is shared, the ledgers are not.
        for session in (research, intern):
            rows = session.execute(SQL, (500,)).fetchall()
            info = session.tenant_info()
            print(f"tenant {info['name']!r}: {len(rows)} rows, "
                  f"spent {info['spent_seconds']:.3f}s of "
                  f"{info['quota']:.6g}s virtual budget")

        # The intern keeps querying until the admission gate says no.
        cut_off = False
        for attempt in range(20):
            try:
                intern.execute(SQL, (100 * attempt,)).fetchall()
            except OperationalError as exc:
                assert exc.code == "QUOTA_EXCEEDED"
                print(f"intern cut off after {attempt + 1} queries: "
                      f"{exc.code} (spent "
                      f"{exc.context['spent']:.3f}s of "
                      f"{exc.context['quota']:.6g}s)")
                cut_off = True
                break
        assert cut_off, "the intern quota never fired"

        # Research is unaffected — quota isolation is per-tenant.
        assert research.execute(SQL, (900,)).fetchall()
        print("research tenant unaffected")

        # The metrics plane: what `curl` would see.
        with urllib.request.urlopen(
                f"http://127.0.0.1:{server.metrics_port}/health",
                timeout=10) as response:
            health = json.loads(response.read())
        print(f"health: {health['status']} "
              f"(engine {health['engine']!r}, "
              f"{health['connections']} connections)")

        with urllib.request.urlopen(
                f"http://127.0.0.1:{server.metrics_port}/metrics",
                timeout=10) as response:
            metrics = response.read().decode()
        interesting = ("repro_engine_events_total{event=\"tokenize\"}",
                       "repro_engine_virtual_seconds",
                       "repro_server_queries_total",
                       "repro_server_rejected_total{reason=\"quota\"}",
                       "repro_tenant_spent_virtual_seconds",
                       "repro_tenant_quota_virtual_seconds")
        print("metrics excerpt:")
        for line in metrics.splitlines():
            if line.startswith(interesting):
                print("   " + line)

        research.close()
        intern.close()
    print("server drained and stopped")


if __name__ == "__main__":
    main()
