"""Scientific data exploration: FITS sky survey + CSV observation log.

The paper's motivating user (§1): "a scientist needs to quickly examine
a few Terabytes of new data in search of certain properties. Even
though only few attributes might be relevant for the task, the entire
data must first be loaded inside the database."

This example plays that scenario out: a (scaled) sky-survey binary
table in FITS — the format of the Sloan Digital Sky Survey — plus a
plain-text observation log, queried together with SQL and zero loading,
and compared against the procedural CFITSIO-style program the paper
benchmarks in §5.3.

Run:  python examples/scientific_exploration.py
"""

import random

from repro import (
    CFitsioProgram,
    DATE,
    FLOAT,
    INTEGER,
    PostgresRaw,
    Schema,
    VirtualFS,
)
from repro.formats.fits import write_bintable


N_EXTRA_BANDS = 25  # survey catalogs are wide (SDSS photoObj: 500+ cols)


def make_sky_survey(vfs: VirtualFS, nrows: int = 4300) -> None:
    """A miniature SDSS-like catalog: positions, magnitudes, redshift,
    plus per-band flux columns (queries touch only a few of them —
    exactly the situation where in-situ caching shines)."""
    rng = random.Random(2012)
    rows = [
        (i,
         rng.uniform(0.0, 360.0),          # right ascension
         rng.uniform(-90.0, 90.0),         # declination
         rng.uniform(12.0, 24.0),          # magnitude
         rng.uniform(0.0, 3.5),            # redshift
         *(rng.uniform(0.0, 100.0) for _ in range(N_EXTRA_BANDS)))
        for i in range(nrows)
    ]
    names = (["obj_id", "ra", "dec", "mag", "z"]
             + [f"flux_{band}" for band in range(N_EXTRA_BANDS)])
    tforms = ["K", "D", "D", "E", "E"] + ["D"] * N_EXTRA_BANDS
    vfs.create("survey.fits", write_bintable(names, tforms, rows))


def make_observation_log(vfs: VirtualFS, nrows: int = 500) -> Schema:
    rng = random.Random(7)
    lines = []
    for night in range(nrows):
        lines.append(
            f"{night},{1992 + night % 8}-{1 + night % 12:02d}-15,"
            f"{rng.uniform(0.5, 3.0):.2f},{rng.randrange(4300)}")
    vfs.create("obslog.csv", ("\n".join(lines) + "\n").encode())
    return Schema([("night", INTEGER), ("obs_date", DATE),
                   ("seeing", FLOAT), ("target", INTEGER)])


def main() -> None:
    vfs = VirtualFS()
    make_sky_survey(vfs)
    log_schema = make_observation_log(vfs)

    db = PostgresRaw(vfs=vfs)
    db.register_fits("survey", "survey.fits")   # schema read from header
    db.register_csv("obslog", "obslog.csv", log_schema)
    print("survey schema (from FITS header):",
          db.catalog.get("survey").schema.names)

    # Declarative exploration, straight away.
    bright = db.query(
        "SELECT count(*) FROM survey WHERE mag < 14.0")
    print(f"\nbright objects (mag < 14): {bright.scalar()}")

    deep = db.query(
        "SELECT avg(z) AS mean_z, max(z) AS max_z FROM survey "
        "WHERE dec > 0 AND mag < 20.0")
    print("northern-sky redshift:", deep.as_dicts()[0])

    # Join the binary catalog with the plain-text log — two formats,
    # one query (§7 "Information Integration").
    joined = db.query(
        "SELECT night, seeing, mag FROM obslog, survey "
        "WHERE target = obj_id AND seeing < 0.7 AND mag < 16 "
        "ORDER BY mag LIMIT 5")
    print("\nbest-seeing nights pointing at bright objects:")
    for row in joined.rows:
        print(f"  night {row[0]}: seeing {row[1]:.2f}, mag {row[2]:.2f}")

    # The §5.3 comparison: procedural CFITSIO program vs PostgresRaw.
    program = CFitsioProgram(vfs, "survey.fits")
    print("\nquery sequence over the FITS file "
          "(virtual seconds per query):")
    print(f"{'query':<12}{'CFITSIO':>12}{'PostgresRaw':>14}")
    for i, (func, column) in enumerate(
            [("min", "mag"), ("max", "mag"), ("avg", "mag"),
             ("avg", "z"), ("min", "z")]):
        answer = program.aggregate(func, column)
        sql = db.query(f"SELECT {func}({column}) FROM survey")
        assert abs(answer.value - sql.scalar()) < 1e-6 * abs(answer.value)
        print(f"{func}({column}):".ljust(12)
              + f"{answer.elapsed:>11.4f}s{sql.elapsed:>13.4f}s")
    print("\nCFITSIO rescans the file every time; PostgresRaw's cache "
          "answers later queries without touching it.")


if __name__ == "__main__":
    main()
