"""Idle-time tuning and file-system prewarming (§7 opportunities).

The paper's §7 sketches two ways a NoDB engine can get ahead of its
queries without ever doing a full load:

* **Auto Tuning Tools** — "given a budget of idle time and workload
  knowledge ... load and index as much of the relevant data as
  possible";
* **File System Interface** — "as soon as a user opens a CSV file in a
  text editor, NoDB can be notified through the file system layer and
  ... start tokenizing the parts of the text file currently being read".

Both are implemented as library features; this example shows them
paying off.

Run:  python examples/idle_time_tuning.py
"""

from repro import CostModel, IdleTuner, PostgresRaw, VirtualFS
from repro.workloads.micro import generate_micro_csv

ROWS = 2000
ATTRS = 30


def fresh_engine():
    vfs = VirtualFS()
    schema = generate_micro_csv(vfs, "metrics.csv", ROWS, ATTRS, seed=12)
    engine = PostgresRaw(vfs=vfs)
    engine.register_csv("metrics", "metrics.csv", schema)
    return engine


def main() -> None:
    # ----- idle-time auto-tuning ------------------------------------------
    cold = fresh_engine()
    tuned = fresh_engine()

    tuner = IdleTuner(tuned)
    tuner.hint("metrics", ["a3", "a4", "a5"])   # tonight's dashboard
    report = tuner.exploit_idle_time(budget_seconds=5.0)
    print("overnight idle window:", report)

    dashboard = ("SELECT avg(a3), min(a4), max(a5) FROM metrics "
                 "WHERE a3 < 800000000")
    cold_time = cold.query(dashboard).elapsed
    tuned_time = tuned.query(dashboard).elapsed
    print(f"morning dashboard query: cold {cold_time * 1000:.2f} ms, "
          f"tuned {tuned_time * 1000:.2f} ms "
          f"({cold_time / tuned_time:.1f}x faster)\n")

    # ----- file-system interface prewarming -------------------------------
    watching = fresh_engine()
    watching.enable_fs_interface("metrics")

    # A colleague pages through the file in their editor: the engine
    # rides along, building its line index from the warm bytes.
    editor = CostModel()
    handle = watching.vfs.open("metrics.csv", editor)
    size = watching.vfs.size("metrics.csv")
    for offset in range(0, size, 64 * 1024):
        handle.read_at(offset, min(64 * 1024, size - offset))

    pm = watching.positional_map_of("metrics")
    print(f"after the editor session the engine already knows "
          f"{pm.known_line_count} of {ROWS} line positions")

    first = watching.query("SELECT a7 FROM metrics WHERE a1 < 100000000")
    plain = fresh_engine()
    plain_first = plain.query(
        "SELECT a7 FROM metrics WHERE a1 < 100000000")
    print(f"first query: watched engine {first.elapsed * 1000:.2f} ms "
          f"(newline scanning already done), "
          f"fresh engine {plain_first.elapsed * 1000:.2f} ms")


if __name__ == "__main__":
    main()
