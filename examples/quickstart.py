"""Quickstart: query a raw CSV file with zero loading.

The NoDB premise (§1): you have a data file and a question; the
data-to-query time should be the time to type the query. PostgresRaw
registers the file (touching no data), answers SQL immediately, and
gets faster as it learns the file's structure.

Run:  python examples/quickstart.py
"""

from repro import INTEGER, PostgresRaw, Schema, VirtualFS, varchar
from repro.workloads.micro import generate_micro_csv, micro_schema


def main() -> None:
    # A "machine": an in-memory filesystem with a simulated OS cache.
    vfs = VirtualFS()

    # Drop a 2000-row, 25-attribute CSV file onto it (the paper's §5.1
    # micro-benchmark shape, at laptop scale).
    schema = generate_micro_csv(vfs, "sensors.csv", rows=2000, nattrs=25,
                                seed=7)

    db = PostgresRaw(vfs=vfs)
    db.register_csv("sensors", "sensors.csv", schema)
    print("registered sensors.csv — engine time so far: "
          f"{db.elapsed():.3f}s (no load step!)\n")

    # Query 1: the first touch pays for tokenizing and parsing.
    q = "SELECT avg(a3), min(a7), max(a7) FROM sensors WHERE a1 < 500000000"
    first = db.query(q)
    print(f"Q1  {first.rows[0]}")
    print(f"    virtual time: {first.elapsed * 1000:.2f} ms "
          f"(cold: tokenized {first.counters.get('tokenize', 0):.0f} chars)")

    # Query 2: the positional map + cache kick in.
    second = db.query(q)
    print(f"Q2  {second.rows[0]}")
    print(f"    virtual time: {second.elapsed * 1000:.2f} ms "
          f"({first.elapsed / second.elapsed:.1f}x faster — map + cache)")

    aux = db.auxiliary_bytes("sensors")
    print(f"\nauxiliary structures: positional map "
          f"{aux['positional_map']:,} B, cache {aux['cache']:,} B")

    # A different query still benefits from what was learned.
    third = db.query("SELECT a2, count(*) FROM sensors "
                     "WHERE a1 < 100000000 GROUP BY a2 LIMIT 5")
    print(f"\nQ3 (new attributes) virtual time: "
          f"{third.elapsed * 1000:.2f} ms, {len(third)} rows")

    # Files added later are immediately queryable (§4.5).
    vfs.create("labels.csv", b"1,calibration\n2,production\n")
    db.add_file("labels", "labels.csv",
                Schema([("run", INTEGER), ("phase", varchar())]))
    print("\nnew file labels.csv queryable instantly:",
          db.query("SELECT phase FROM labels WHERE run = 2").rows)


if __name__ == "__main__":
    main()
