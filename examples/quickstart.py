"""Quickstart: query a raw CSV file with zero loading.

The NoDB premise (§1): you have a data file and a question; the
data-to-query time should be the time to type the query. The whole
ceremony is SQL now — ``CREATE TABLE ... USING csv OPTIONS (path ...)``
declares the schema and binds the in-situ scan without touching a byte
of data, and everything after that is ordinary queries: ``?``
parameters, prepared statements that skip all parse/plan work on
re-execution, streaming cursors that never materialize more than a
scan block, ``SHOW TABLES``/``DESCRIBE`` for the catalog, ``DROP
TABLE`` to tear the table (and its adaptive structures) back down.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

import repro
from repro import VirtualFS
from repro.workloads.micro import generate_micro_csv


def main() -> None:
    # A "machine": an in-memory filesystem with a simulated OS cache.
    vfs = VirtualFS()

    # Drop a 2000-row, 25-attribute CSV file onto it (the paper's §5.1
    # micro-benchmark shape, at laptop scale).
    generate_micro_csv(vfs, "sensors.csv", rows=2000, nattrs=25, seed=7)

    session = repro.connect(vfs=vfs)

    # Declare the table: schema a priori (§3.1), no data touched.
    columns = ", ".join(f"a{i} INTEGER" for i in range(25))
    session.execute(f"CREATE TABLE sensors ({columns}) "
                    "USING csv OPTIONS (path 'sensors.csv')")
    print("declared sensors.csv — engine time so far: "
          f"{session.engine.elapsed():.3f}s (no load step!)\n")

    for row in session.execute("DESCRIBE sensors").fetchmany(3):
        print("   ", row)
    print("    ... (SHOW TABLES:",
          session.execute("SHOW TABLES").fetchall(), ")\n")

    # Query 1: the first touch pays for tokenizing and parsing.
    q = "SELECT avg(a3), min(a7), max(a7) FROM sensors WHERE a1 < 500000000"
    first = session.query(q)
    print(f"Q1  {first.rows[0]}")
    print(f"    virtual time: {first.elapsed * 1000:.2f} ms "
          f"(cold: tokenized {first.counters.get('tokenize', 0):.0f} chars)")

    # Query 2: the positional map + cache kick in — and the statement
    # cache means the identical SQL is not even re-parsed.
    second = session.query(q)
    print(f"Q2  {second.rows[0]}")
    print(f"    virtual time: {second.elapsed * 1000:.2f} ms "
          f"({first.elapsed / second.elapsed:.1f}x faster — map + cache)")

    aux = session.engine.auxiliary_bytes("sensors")
    print(f"\nauxiliary structures: positional map "
          f"{aux['positional_map']:,} B, cache {aux['cache']:,} B")

    # Prepared statements: parse + plan once, bind many times.
    stmt = session.prepare(
        "SELECT a2, count(*) FROM sensors WHERE a1 < ? GROUP BY a2 LIMIT 5")
    for threshold in (100_000_000, 900_000_000):
        result = stmt.execute((threshold,)).result()
        print(f"\nprepared(a1 < {threshold:,}): {len(result)} groups in "
              f"{result.elapsed * 1000:.2f} ms (zero re-parse/re-plan)")

    # Streaming: fetch a big scan in small bites — the cursor buffers
    # at most one scan block beyond what you ask for.
    cursor = session.execute("SELECT a1, a2 FROM sensors")
    preview = cursor.fetchmany(3)
    print(f"\nstreaming preview: {preview} "
          f"(peak buffered: {cursor.peak_buffered_rows} rows)")
    cursor.close()  # abandon the rest; partial map/cache state is kept

    # Files added later are immediately queryable (§4.5) — declare and
    # go, with qmark parameter binding.
    vfs.create("labels.csv", b"1,calibration\n2,production\n")
    session.execute("CREATE TABLE labels (run INTEGER, phase VARCHAR) "
                    "USING csv OPTIONS (path 'labels.csv')")
    row = session.execute("SELECT phase FROM labels WHERE run = ?",
                          (2,)).fetchone()
    print("\nnew file labels.csv queryable instantly:", row)

    # EXPLAIN shows the physical plan without running anything.
    print("\nEXPLAIN of Q1:")
    for (line,) in session.execute("EXPLAIN " + q):
        print("   " + line)

    # DROP TABLE tears down the table and its adaptive structures.
    session.execute("DROP TABLE labels")
    print("\nafter DROP TABLE labels:",
          session.execute("SHOW TABLES").fetchall())

    session.close()


if __name__ == "__main__":
    main()
