"""Fault tolerance in situ: error policies, retries, self-healing.

Raw files are not clean: rows go missing a field, values do not parse,
disks hiccup mid-scan. This demo shows the robustness layer end to end:

* a corrupted CSV scanned under ``on_error 'skip'`` — bad rows are
  quarantined to the ``__rejects__/`` sidecar and counted in the
  ``rows_rejected`` counter, good rows flow through untouched;
* the same file under ``on_error 'null'`` — unparseable values become
  SQL NULLs instead of dropping the row;
* a seeded :class:`~repro.storage.faults.FaultInjectingVFS` injecting
  transient I/O faults that the storage layer retries with bounded
  backoff billed on the virtual clock (``io_retries`` / ``io_stall``);
* a query deadline cancelling an overrunning query cooperatively while
  the session keeps working.

Run:  PYTHONPATH=src python examples/fault_demo.py
"""

import repro
from repro.api.exceptions import OperationalError
from repro.storage.faults import FaultInjectingVFS

DIRTY = (b"1,alice,30\n"
         b"2,bob,notanint\n"      # unparseable age
         b"3,carol,41\n"
         b"corrupted line\n"      # short row
         b"5,eve,29\n"
         b"6,frank,52\n")


def main() -> None:
    # A fault-injecting VFS with a seeded schedule of transient faults:
    # same seed, same faults — chaos, but reproducible chaos.
    vfs = FaultInjectingVFS(seed=42, rate=0.3)
    vfs.create("people.csv", DIRTY)

    session = repro.connect(vfs=vfs)
    cur = session.cursor()

    # -- on_error 'skip': quarantine bad rows --------------------------
    cur.execute("CREATE TABLE people (id INTEGER, name TEXT, age INTEGER) "
                "USING csv OPTIONS (path 'people.csv', on_error 'skip')")
    cur.execute("EXPLAIN SELECT id, age FROM people WHERE age > 25")
    print("plan (note the on_error row):")
    for (line,) in cur.fetchall():
        print("   " + line)

    cur.execute("SELECT id, name, age FROM people WHERE age > 25")
    rows = cur.fetchall()
    counters = cur.counters()
    print("\nrows served despite the corruption:", rows)
    print("rows_rejected:", counters.get("rows_rejected"))
    print("quarantine sidecar (__rejects__/people):")
    for line in vfs.read_bytes("__rejects__/people").decode().splitlines():
        print("   " + line)

    # -- on_error 'null': keep the row, NULL the value -----------------
    cur.execute("CREATE TABLE people_n (id INTEGER, name TEXT, age INTEGER) "
                "USING csv OPTIONS (path 'people.csv', on_error 'null')")
    cur.execute("SELECT id, age FROM people_n")
    print("\nunder on_error 'null' every row survives:", cur.fetchall())

    # -- query deadlines ----------------------------------------------
    vfs.create("big.csv", b"".join(b"%d,%d\n" % (i, i * 3)
                                   for i in range(20000)))
    cur.execute("CREATE TABLE big (id INTEGER, v INTEGER) "
                "USING csv OPTIONS (path 'big.csv')")
    cur.execute("SELECT id, v FROM big WHERE v > 9", timeout=1e-5)
    try:
        cur.fetchall()
    except OperationalError as exc:
        print(f"\ndeadline enforced: {exc.code}: {exc}")
    cur.execute("SELECT count(*) FROM big")
    print("session still healthy afterwards:", cur.fetchall())

    injected = sum(1 for kind, *_ in vfs.fault_log if kind == "transient")
    stalls = session.counters().get("io_stall", 0)
    print(f"\n{injected} transient faults were injected and retried "
          f"(io_retries={session.counters().get('io_retries', 0):g}, "
          f"{stalls:.4f} virtual seconds stalled); every query above "
          "still returned exact answers.")


if __name__ == "__main__":
    main()
