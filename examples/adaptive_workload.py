"""Workload drift: watching PostgresRaw adapt (Figure 6's story).

A 5-epoch query stream moves its focus across the columns of a wide
file; the engine's cache and positional map follow it around under a
fixed memory budget, stabilizing each time the workload does.

Run:  python examples/adaptive_workload.py
"""

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.workloads.micro import generate_micro_csv
from repro.workloads.queries import epoch_queries

ROWS = 1500
ATTRS = 60
QUERIES_PER_EPOCH = 12


def main() -> None:
    vfs = VirtualFS()
    schema = generate_micro_csv(vfs, "wide.csv", ROWS, ATTRS, seed=3)

    config = PostgresRawConfig(
        row_block_size=256,
        cache_budget_bytes=400_000,   # forces eviction when drifting
        pm_budget_bytes=150_000,
    )
    db = PostgresRaw(config=config, vfs=vfs)
    db.register_csv("wide", "wide.csv", schema)

    # Fig 6's epochs: region shifts, returns, then straddles old/new.
    epochs = [(1, 20), (21, 40), (1, 40), (30, 50), (35, 55)]
    queries = epoch_queries("wide", ATTRS, epochs, QUERIES_PER_EPOCH,
                            attrs_per_query=5, seed=0)

    cache = db.cache_of("wide")
    print(f"{'epoch':<7}{'query':<7}{'time':>10}{'cache use':>12}"
          f"{'evictions':>11}")
    for i, q in enumerate(queries):
        epoch = i // QUERIES_PER_EPOCH + 1
        result = db.query(q)
        if i % QUERIES_PER_EPOCH in (0, QUERIES_PER_EPOCH - 1):
            print(f"{epoch:<7}{i + 1:<7}{result.elapsed:>9.4f}s"
                  f"{cache.utilization():>11.0%}{cache.evictions:>11}")
        if (i + 1) % QUERIES_PER_EPOCH == 0:
            columns = epochs[epoch - 1]
            print(f"       -- epoch {epoch} done (columns "
                  f"{columns[0]}-{columns[1]})")

    print("\nthe engine kept answering from the cache whenever the "
          "workload revisited known columns, and paid raw-file costs "
          "only when it drifted — Figure 6's behaviour.")


if __name__ == "__main__":
    main()
