"""Coverage for remaining seams: executor results, engine base helpers,
workload generators, and a cross-engine SQL property test."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LoadedDBMS,
    PostgresRaw,
    QueryResult,
    Schema,
    VirtualFS,
)
from repro.formats.fits import BLOCK, parse_fits, write_bintable
from repro.workloads.micro import generate_micro_csv, micro_schema
from repro.workloads.queries import (
    epoch_queries,
    projectivity_query,
    random_projection_query,
    selectivity_query,
)


class TestQueryResult:
    def test_scalar_requires_1x1(self):
        result = QueryResult(columns=["a", "b"], rows=[(1, 2)])
        with pytest.raises(ValueError):
            result.scalar()
        result = QueryResult(columns=["a"], rows=[(1,), (2,)])
        with pytest.raises(ValueError):
            result.scalar()

    def test_column_unknown_name(self):
        result = QueryResult(columns=["a"], rows=[(1,)])
        with pytest.raises(ValueError):
            result.column("zz")

    def test_iteration_and_len(self):
        result = QueryResult(columns=["a"], rows=[(1,), (2,)])
        assert list(result) == [(1,), (2,)]
        assert len(result) == 2


class TestEngineBaseHelpers:
    def test_tables_of_includes_exists_subqueries(self, people_vfs):
        db = PostgresRaw(vfs=people_vfs)
        db.register_csv("people", "people.csv", Schema(
            [("id", __import__("repro").INTEGER)]))
        from repro.sql.parser import parse
        select = parse(
            "SELECT id FROM people WHERE EXISTS "
            "(SELECT * FROM other WHERE x = id)")
        names = db._tables_of(select)
        assert "people" in names and "other" in names

    def test_counters_returns_plain_dict(self, people_raw):
        people_raw.query("SELECT name FROM people")
        counters = people_raw.counters()
        assert isinstance(counters, dict)
        assert counters.get("tuple_overhead", 0) >= 5


class TestWorkloadGenerators:
    def test_random_projection_respects_region(self):
        rng = random.Random(0)
        for _ in range(20):
            sql = random_projection_query(rng, "t", 100, 4, lo=10, hi=20)
            cols = sql.split("SELECT ")[1].split(" FROM")[0].split(", ")
            assert all(10 <= int(c[1:]) <= 20 for c in cols)
            assert len(set(cols)) == 4

    def test_selectivity_query_threshold(self):
        sql = selectivity_query("t", 10, 0.25, 0.5)
        assert "WHERE a1 < 250000000" in sql
        assert sql.count("sum(") == 5

    def test_projectivity_query_width(self):
        sql = projectivity_query("t", 20, 0.1)
        assert sql.count("sum(") == 2

    def test_epoch_queries_deterministic(self):
        first = epoch_queries("t", 50, [(1, 10), (11, 20)], 5, 3, seed=1)
        second = epoch_queries("t", 50, [(1, 10), (11, 20)], 5, 3, seed=1)
        assert first == second
        assert len(first) == 10

    def test_micro_generator_deterministic(self):
        a, b = VirtualFS(), VirtualFS()
        generate_micro_csv(a, "x.csv", 50, 5, seed=3)
        generate_micro_csv(b, "x.csv", 50, 5, seed=3)
        assert a.read_bytes("x.csv") == b.read_bytes("x.csv")
        generate_micro_csv(b, "x.csv", 50, 5, seed=4)
        assert a.read_bytes("x.csv") != b.read_bytes("x.csv")

    def test_zero_rows(self):
        vfs = VirtualFS()
        generate_micro_csv(vfs, "x.csv", 0, 5)
        assert vfs.read_bytes("x.csv") == b""


class TestFitsHeaderEdges:
    def test_header_spanning_multiple_blocks(self):
        # >36 cards forces a 2-block extension header.
        names = [f"col_{i}" for i in range(40)]
        tforms = ["J"] * 40
        rows = [tuple(range(40))]
        data = write_bintable(names, tforms, rows)
        info = parse_fits(data)
        assert len(info.columns) == 40
        assert info.nrows == 1
        assert len(data) % BLOCK == 0

    def test_empty_table(self):
        info = parse_fits(write_bintable(["x"], ["J"], []))
        assert info.nrows == 0


# ---------------------------------------------------------------------------
# Cross-engine SQL property test
# ---------------------------------------------------------------------------
N_ATTRS = 5


def build_pair(rows):
    vfs = VirtualFS()
    payload = "\n".join(",".join(map(str, row)) for row in rows)
    vfs.create("p.csv", (payload + "\n").encode())
    schema = micro_schema(N_ATTRS)
    raw = PostgresRaw(vfs=vfs)
    raw.register_csv("p", "p.csv", schema)
    loaded = LoadedDBMS(vfs=vfs)
    loaded.load_csv("p", "p.csv", schema)
    return raw, loaded


sql_query = st.builds(
    lambda cols, agg, where_attr, threshold, order: (
        "SELECT "
        + (", ".join(f"a{c + 1}" for c in cols) if not agg
           else ", ".join(f"sum(a{c + 1})" for c in cols))
        + " FROM p"
        + (f" WHERE a{where_attr + 1} < {threshold}"
           if where_attr is not None else "")
    ),
    cols=st.lists(st.integers(0, N_ATTRS - 1), min_size=1, max_size=3,
                  unique=True),
    agg=st.booleans(),
    where_attr=st.one_of(st.none(), st.integers(0, N_ATTRS - 1)),
    threshold=st.integers(0, 100),
    order=st.booleans(),
)


class TestSQLDifferentialProperty:
    @given(st.lists(st.lists(st.integers(0, 99), min_size=N_ATTRS,
                             max_size=N_ATTRS), min_size=1, max_size=25),
           st.lists(sql_query, min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_raw_and_loaded_agree_on_random_sql(self, rows, queries):
        raw, loaded = build_pair(rows)
        for sql in queries:
            raw_rows = sorted(map(repr, raw.query(sql).rows))
            loaded_rows = sorted(map(repr, loaded.query(sql).rows))
            assert raw_rows == loaded_rows, sql
