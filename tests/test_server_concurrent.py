"""Multi-client determinism: wire sessions equal in-process sessions.

The differential satellite for the network front end: N wire clients
streaming concurrently through the server must produce bit-identical
rows AND leave the engine's priced ledger — the virtual clock and
every cost-event counter — identical to N in-process sessions driven
through the same admission scheduler in the same order. The server
adds observability (connection stats, tenant ledgers) but must never
perturb what the engine charges.

The determinism comparison drives both sides from one thread in the
same round-robin order (the server handles requests strictly in
arrival order, so a sequential driver pins the interleaving); a
separate truly-threaded test checks row correctness under real
concurrency, where the interleaving — and hence the cold/warm split
between clients — is up to the OS scheduler, but row *content* is not.

Parametrized over ``scan_workers`` 1 and 4: parallel chunk scans under
the server charge exactly the same units as serial ones (the PR 4
contract), now end to end through the wire.
"""

import threading

import pytest

import repro
from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.server import QueryServer, wire_connect
from repro.workloads.micro import generate_micro_csv

WORKER_COUNTS = (1, 4)

#: one query per client — overlapping attribute sets so the positional
#: map and cache are genuinely shared (and fought over) across clients
CLIENT_QUERIES = [
    "SELECT a1, a2 FROM m WHERE a1 > 100 ORDER BY a1",
    "SELECT a2, a4 FROM m WHERE a2 > 150000000 ORDER BY a2",
    "SELECT a3, count(*) FROM m GROUP BY a3 ORDER BY a3",
    "SELECT a1, a5 FROM m WHERE a5 < 400000000 ORDER BY a1",
]


def micro_engine(workers: int) -> PostgresRaw:
    vfs = VirtualFS()
    schema = generate_micro_csv(vfs, "m.csv", rows=900, nattrs=6, seed=11)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=64, scan_workers=workers),
        vfs=vfs)
    engine.register_csv("m", "m.csv", schema)
    return engine


def drive_round_robin(cursors, chunk=50):
    """Fetch ``chunk`` rows per cursor per round until all are drained;
    the canonical interleaving both sides of the differential use."""
    rows = [[] for _ in cursors]
    active = set(range(len(cursors)))
    while active:
        for k in sorted(active):
            got = cursors[k].fetchmany(chunk)
            if got:
                rows[k].extend(got)
            else:
                active.discard(k)
    return rows


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_wire_clients_match_in_process_sessions(workers):
    # In-process side: N sessions on one engine, round-robin driven.
    engine_local = micro_engine(workers)
    sessions = [repro.connect(engine=engine_local) for _ in CLIENT_QUERIES]
    local_cursors = [session.cursor().execute(sql)
                     for session, sql in zip(sessions, CLIENT_QUERIES)]
    local_rows = drive_round_robin(local_cursors)
    local_query_counters = [cur.counters() for cur in local_cursors]
    local_session_elapsed = [s.elapsed() for s in sessions]

    # Wire side: the same engine build served, the same driving order
    # from this one thread (the server handles requests in arrival
    # order, so the engine sees the identical op sequence).
    engine_served = micro_engine(workers)
    with QueryServer(engine_served) as server:
        clients = [wire_connect("127.0.0.1", server.port)
                   for _ in CLIENT_QUERIES]
        wire_cursors = [client.execute(sql)
                        for client, sql in zip(clients, CLIENT_QUERIES)]
        wire_rows = drive_round_robin(wire_cursors)

        # Bit-identical rows, per client.
        assert wire_rows == local_rows
        # Identical per-query ledgers...
        for wire_cur, counters in zip(wire_cursors, local_query_counters):
            assert wire_cur.counters() == counters
        # ...identical per-session clocks...
        for client, elapsed in zip(clients, local_session_elapsed):
            assert client.elapsed() == elapsed
        for client in clients:
            client.close()

    # ...and an identical engine: same virtual clock, same priced
    # counter ledger, down to the unit. The server front end is
    # cost-invisible.
    assert engine_served.clock.now() == engine_local.clock.now()
    assert dict(engine_served.clock.counters) == \
        dict(engine_local.clock.counters)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_threaded_wire_clients_row_correctness(workers):
    # Content oracle: each query's rows on a private fresh engine.
    expected = {sql: repro.connect(engine=micro_engine(workers))
                .execute(sql).fetchall() for sql in CLIENT_QUERIES}

    engine = micro_engine(workers)
    failures = []
    with QueryServer(engine, max_in_flight=len(CLIENT_QUERIES)) as server:
        def client_main(sql):
            try:
                with wire_connect("127.0.0.1", server.port) as session:
                    for _ in range(2):  # cold pass, then warm
                        rows = session.execute(sql).fetchall()
                        if rows != expected[sql]:
                            failures.append((sql, len(rows)))
            except Exception as exc:  # surfaced below, not swallowed
                failures.append((sql, repr(exc)))

        threads = [threading.Thread(target=client_main, args=(sql,))
                   for sql in CLIENT_QUERIES]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert server.stats["queries"] == 2 * len(CLIENT_QUERIES)
    assert not failures
