"""Chaos & error-policy suite: fault injection, degradation, deadlines.

The fault-tolerance contract under test:

* ``OPTIONS (on_error 'fail'|'skip'|'null')`` controls what a scan does
  with malformed raw rows — raise a typed error with structured
  context, quarantine the row to the ``__rejects__/`` sidecar, or
  NULL-fill the unparseable values.
* Results, counters, virtual-clock time and positional-map / binary-
  cache structure dumps are bit-identical at any ``scan_workers``
  count, faults or no faults.
* Every injected fault surfaces as a typed error or as counted
  degradation (``io_retries`` / ``rows_rejected`` / ``aux_rebuilds``)
  — never a crash, a wrong answer, or corrupted auxiliary state.
* Auxiliary structures self-heal: corrupted zone sidecars, spilled PM
  chunks and cache blocks are quarantined and rebuilt from the raw
  file.
* ``cursor.execute(..., timeout=)`` / ``config.query_deadline`` cancel
  overrunning queries cooperatively at batch boundaries, leaving the
  session usable.
"""

import pytest

import repro
from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.api.exceptions import (
    DataError,
    OperationalError,
    ProgrammingError,
)
from repro.errors import IOFaultError, QueryTimeoutError
from repro.simcost.clock import CostEvent
from repro.storage.faults import FaultInjectingVFS

from test_batch_differential import cache_dump, pm_dump

DIRTY_CSV = (b"1,alice,30\n"
             b"2,bob,notanint\n"      # bad value in 'age'
             b"3,carol,41\n"
             b"badrow\n"              # short row
             b"5,eve,29\n"
             b"6,frank,52\n"
             b"7,grace,oops\n"        # bad value in 'age'
             b"8,heidi,33\n")

DIRTY_JSONL = (b'{"id": 1, "age": 30}\n'
               b'{"id": 2, "age": "nope"}\n'   # bad value
               b'{"id": 3, "age": 41}\n'
               b'not json at all\n'            # structurally broken
               b'{"id": 5}\n'                  # missing member: plain NULL
               b'{"id": 6, "age": 52}\n')


def make_session(data=DIRTY_CSV, on_error=None, fmt="csv", **config_kw):
    vfs = VirtualFS()
    path = "dirty.csv" if fmt == "csv" else "dirty.jsonl"
    vfs.create(path, data)
    ses = repro.connect(vfs=vfs, config=PostgresRawConfig(**config_kw))
    opts = f"path '{path}'"
    if on_error is not None:
        opts += f", on_error '{on_error}'"
    if fmt == "csv":
        ddl = (f"CREATE TABLE t (id INTEGER, name TEXT, age INTEGER) "
               f"USING csv OPTIONS ({opts})")
    else:
        ddl = (f"CREATE TABLE t (id INTEGER, age INTEGER) "
               f"USING jsonl OPTIONS ({opts})")
    cur = ses.cursor()
    cur.execute(ddl)
    return ses, cur, vfs


# ---------------------------------------------------------------------------
# Error policies
# ---------------------------------------------------------------------------
def test_on_error_fail_is_default_and_typed():
    ses, cur, _ = make_session()
    cur.execute("SELECT id, age FROM t WHERE age > 0")
    with pytest.raises(DataError) as err:
        cur.fetchall()
    assert err.value.code == "CSV_FORMAT"
    assert err.value.context.get("table") == "t"
    assert err.value.context.get("path") == "dirty.csv"
    # The first failure the scan hits is the short row (0-based row 3).
    assert err.value.context.get("row_number") == 3


def test_on_error_skip_quarantines_rows():
    ses, cur, vfs = make_session(on_error="skip")
    cur.execute("SELECT id, age FROM t WHERE age > 0")
    rows = cur.fetchall()
    assert rows == [(1, 30), (3, 41), (5, 29), (6, 52), (8, 33)]
    assert cur.counters().get("rows_rejected") == 3
    sidecar = vfs.read_bytes("__rejects__/t")
    lines = sidecar.decode().splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("1\t")          # 0-based row number
    assert "notanint" in lines[0]
    assert any(line.startswith("3\t") for line in lines)  # badrow
    assert any(line.startswith("6\t") for line in lines)  # oops


def test_on_error_skip_sidecar_not_duplicated_on_warm_scan():
    ses, cur, vfs = make_session(on_error="skip")
    # Selective parsing: only the touched column (id) can reject, so
    # just the short row is quarantined — bad 'age' values go unseen.
    cur.execute("SELECT id FROM t")
    first = cur.fetchall()
    assert first == [(1,), (2,), (3,), (5,), (6,), (7,), (8,)]
    assert cur.counters().get("rows_rejected") == 1
    size_after_cold = len(vfs.read_bytes("__rejects__/t"))
    cur.execute("SELECT id FROM t")
    assert cur.fetchall() == first
    # The counter re-counts every scan; the sidecar dedupes by row.
    assert cur.counters().get("rows_rejected") == 1
    assert len(vfs.read_bytes("__rejects__/t")) == size_after_cold


def test_on_error_null_keeps_rows():
    ses, cur, _ = make_session(on_error="null")
    cur.execute("SELECT id, age FROM t")
    rows = cur.fetchall()
    assert len(rows) == 8
    by_id = dict(rows)
    assert by_id[2] is None and by_id[7] is None
    assert by_id[1] == 30 and by_id[8] == 33
    # The short row has no parseable id either under 'null'.
    assert (None, None) in rows


def test_on_error_null_filters_null_predicates():
    # SQL three-valued logic: NULL > 0 is UNKNOWN, row filtered.
    ses, cur, _ = make_session(on_error="null")
    cur.execute("SELECT id FROM t WHERE age > 0")
    assert [r[0] for r in cur.fetchall()] == [1, 3, 5, 6, 8]


def test_bad_on_error_policy_rejected_at_ddl():
    vfs = VirtualFS()
    vfs.create("t.csv", b"1\n")
    ses = repro.connect(vfs=vfs)
    with pytest.raises(ProgrammingError):
        ses.cursor().execute(
            "CREATE TABLE t (id INTEGER) USING csv "
            "OPTIONS (path 't.csv', on_error 'explode')")


def test_explain_surfaces_on_error():
    ses, cur, _ = make_session(on_error="skip")
    cur.execute("EXPLAIN SELECT id FROM t")
    text = "\n".join(r[0] for r in cur.fetchall())
    assert "on_error='skip'" in text
    ses2, cur2, _ = make_session()
    cur2.execute("EXPLAIN SELECT id FROM t")
    text2 = "\n".join(r[0] for r in cur2.fetchall())
    assert "on_error" not in text2


def test_jsonl_policies():
    ses, cur, _ = make_session(data=DIRTY_JSONL, on_error="skip",
                               fmt="jsonl")
    cur.execute("SELECT id, age FROM t")
    rows = cur.fetchall()
    # Missing member is an ordinary NULL, never an error.
    assert rows == [(1, 30), (3, 41), (5, None), (6, 52)]
    assert cur.counters().get("rows_rejected") == 2

    ses2, cur2, _ = make_session(data=DIRTY_JSONL, on_error="null",
                                 fmt="jsonl")
    cur2.execute("SELECT id, age FROM t")
    rows2 = cur2.fetchall()
    assert len(rows2) == 6
    assert (None, None) in rows2          # the broken line, all-NULL
    assert (2, None) in rows2             # bad value only

    ses3, cur3, _ = make_session(data=DIRTY_JSONL, fmt="jsonl")
    cur3.execute("SELECT id, age FROM t")
    with pytest.raises(DataError) as err:
        cur3.fetchall()
    assert err.value.code == "JSONL_FORMAT"


# ---------------------------------------------------------------------------
# Worker-count bit-identity under error policies
# ---------------------------------------------------------------------------
def run_policy_workload(workers, on_error, kernels=True):
    ses, cur, vfs = make_session(
        on_error=on_error, scan_workers=workers, row_block_size=2,
        scan_kernels=kernels)
    out = []
    for sql in ("SELECT id, age FROM t WHERE age > 0",
                "SELECT name FROM t",
                "SELECT id, age FROM t WHERE age > 0",   # warm
                "SELECT count(*) FROM t"):
        cur.execute(sql)
        out.append(cur.fetchall())
    engine = ses.engine
    state = (out,
             pm_dump(engine.positional_map_of("t")),
             cache_dump(engine.cache_of("t")),
             dict(engine.clock.counters),
             engine.clock.now(),
             vfs.read_bytes("__rejects__/t")
             if vfs.exists("__rejects__/t") else None)
    ses.close()
    return state


@pytest.mark.parametrize("on_error", ["skip", "null"])
def test_policy_bit_identity_across_workers(on_error):
    baseline = run_policy_workload(1, on_error)
    for workers in (2, 4):
        assert run_policy_workload(workers, on_error) == baseline


def test_policy_bit_identity_kernels_on_off():
    def strip_kernel_counters(state):
        out, pm, cache, counters, elapsed, rejects = state
        counters = {key: value for key, value in counters.items()
                    if "kernel" not in str(key).lower()}
        return out, pm, cache, counters, elapsed, rejects
    # Kernel probe/bailout events are the only permitted difference —
    # results, structures, rejects and the clock match exactly.
    assert (strip_kernel_counters(run_policy_workload(1, "skip",
                                                      kernels=False))
            == strip_kernel_counters(run_policy_workload(4, "skip",
                                                         kernels=True)))


def test_jsonl_skip_bit_identity_across_workers():
    def run(workers):
        ses, cur, vfs = make_session(
            data=DIRTY_JSONL, on_error="skip", fmt="jsonl",
            scan_workers=workers, row_block_size=2)
        cur.execute("SELECT id, age FROM t")
        rows = cur.fetchall()
        cur.execute("SELECT id, age FROM t")   # warm
        rows2 = cur.fetchall()
        state = (rows, rows2, dict(ses.engine.clock.counters),
                 ses.engine.clock.now(),
                 vfs.read_bytes("__rejects__/t"))
        ses.close()
        return state
    assert run(1) == run(2) == run(4)


# ---------------------------------------------------------------------------
# I/O fault injection: retries, hard errors, truncation
# ---------------------------------------------------------------------------
CLEAN_CSV = b"".join(b"%d,%d\n" % (i, i * 7) for i in range(200))


def faulty_session(seed, rate, workers=1, **vfs_kw):
    vfs = FaultInjectingVFS(seed=seed, rate=rate, **vfs_kw)
    vfs.create("t.csv", CLEAN_CSV)
    ses = repro.connect(
        vfs=vfs, config=PostgresRawConfig(scan_workers=workers,
                                          row_block_size=16))
    cur = ses.cursor()
    cur.execute("CREATE TABLE t (id INTEGER, v INTEGER) "
                "USING csv OPTIONS (path 't.csv')")
    return ses, cur, vfs


def test_transient_faults_retry_and_stay_deterministic():
    def run(workers):
        ses, cur, _ = faulty_session(seed=11, rate=0.6, workers=workers)
        cur.execute("SELECT id, v FROM t WHERE v > 100")
        rows = cur.fetchall()
        state = (rows, dict(ses.engine.clock.counters),
                 ses.engine.clock.now())
        ses.close()
        return state
    rows, counters, elapsed = run(1)
    # Correct answer despite the faults...
    assert rows == [(i, i * 7) for i in range(200) if i * 7 > 100]
    # ...with the degradation counted and billed on the virtual clock.
    assert counters.get(CostEvent.IO_RETRIES, 0) > 0
    assert counters.get(CostEvent.IO_STALL, 0) > 0
    # Same seed, any worker count: bit-identical.
    assert run(4) == (rows, counters, elapsed)
    # A different seed gives a different (but still correct) schedule.
    other = faulty_session(seed=12, rate=0.6)
    other[1].execute("SELECT id, v FROM t WHERE v > 100")
    assert other[1].fetchall() == rows


def test_hard_fault_is_typed_and_counted():
    ses, cur, vfs = faulty_session(seed=1, rate=0.0)
    vfs.schedule_error("t.csv")
    cur.execute("SELECT id FROM t")
    with pytest.raises(OperationalError) as err:
        cur.fetchall()
    assert err.value.code == "IO_FAULT"
    assert isinstance(err.value.__cause__, IOFaultError)
    assert err.value.context.get("path") == "t.csv"
    assert "byte_offset" in err.value.context
    # The retry budget was spent before giving up.
    assert ses.engine.clock.counters.get(CostEvent.IO_RETRIES, 0) > 0
    # The bad region stays bad until repaired; then the session
    # recovers without being rebuilt.
    cur.execute("SELECT count(*) FROM t")
    with pytest.raises(OperationalError):
        cur.fetchall()
    vfs.resolve_error("t.csv")
    cur.execute("SELECT count(*) FROM t")
    assert cur.fetchall() == [(200,)]


def test_midscan_truncation_never_crashes():
    ses, cur, vfs = faulty_session(seed=1, rate=0.0)
    vfs.schedule_truncation("t.csv", after_reads=2,
                            keep_bytes=len(CLEAN_CSV) // 2)
    cur.execute("SELECT id, v FROM t")
    try:
        rows = cur.fetchall()
        # Completed: every emitted row must be genuine file content.
        assert all(v == i * 7 for i, v in rows)
    except (DataError, OperationalError):
        pass  # typed failure is equally acceptable — never a crash
    # §4.5 external-update detection: the next query sees the truncated
    # file consistently (structures were reset, results are correct).
    cur.execute("SELECT count(*) FROM t")
    count = cur.fetchall()[0][0]
    truncated = vfs.read_bytes("t.csv")
    assert count == truncated.count(b"\n") + (
        0 if truncated.endswith(b"\n") or not truncated else 1)


def test_engine_wraps_vfs_when_fault_seed_configured():
    eng = PostgresRaw(config=PostgresRawConfig(fault_seed=3))
    assert isinstance(eng.vfs, FaultInjectingVFS)
    # An explicitly passed VFS is never wrapped.
    eng2 = PostgresRaw(config=PostgresRawConfig(fault_seed=3),
                       vfs=VirtualFS())
    assert not isinstance(eng2.vfs, FaultInjectingVFS)


# ---------------------------------------------------------------------------
# Auxiliary-structure self-healing
# ---------------------------------------------------------------------------
def partitioned_setup():
    vfs = FaultInjectingVFS(seed=5, rate=0.0)
    vfs.create("data/p1.csv", b"1,10\n2,20\n")
    vfs.create("data/p2.csv", b"3,30\n4,40\n")
    eng = PostgresRaw(vfs=vfs)
    eng.query("CREATE TABLE t (id INTEGER, v INTEGER) USING csv "
              "OPTIONS (path 'data/p*.csv')")
    eng.query("SELECT id, v FROM t")      # builds + persists zones
    return vfs


def test_zone_sidecar_detects_same_size_mutation():
    """Regression for the silent-staleness gap: an in-place overwrite
    that leaves (rewrite_count, size) unchanged used to be trusted."""
    vfs = partitioned_setup()
    vfs.external_overwrite("data/p2.csv", 0, b"9,90\n8,80\n")
    eng = PostgresRaw(vfs=vfs)
    eng.query("CREATE TABLE t (id INTEGER, v INTEGER) USING csv "
              "OPTIONS (path 'data/p*.csv')")
    assert eng.clock.counters.get(CostEvent.AUX_REBUILDS, 0) == 1
    # The stale zone (30..40) would have pruned p2 for v > 85.
    assert eng.query("SELECT id FROM t WHERE v > 85").rows == [(9,)]


def test_zone_sidecar_checksum_quarantines_corruption():
    vfs = partitioned_setup()
    zone_paths = sorted(p for p in vfs.listdir()
                        if p.startswith("__zones__/"))
    assert zone_paths
    vfs.write_bytes(zone_paths[0], b"{garbage")
    payload = vfs.read_bytes(zone_paths[1])
    vfs.write_bytes(zone_paths[1],
                    payload.replace(b'"row_count": 2', b'"row_count": 1'))
    eng = PostgresRaw(vfs=vfs)
    eng.query("CREATE TABLE t (id INTEGER, v INTEGER) USING csv "
              "OPTIONS (path 'data/p*.csv')")
    assert eng.clock.counters.get(CostEvent.AUX_REBUILDS, 0) == 2
    assert eng.query("SELECT count(*) FROM t").rows == [(4,)]
    # Both quarantined sidecars were deleted; the next scan rebuilds.
    eng.query("SELECT id, v FROM t")
    for path in zone_paths:
        assert vfs.exists(path)


def test_pm_spill_corruption_self_heals():
    vfs = VirtualFS()
    vfs.create("u.csv", b"".join(b"%d,%d\n" % (i, i * 10)
                                 for i in range(1, 7)))
    eng = PostgresRaw(config=PostgresRawConfig(
        pm_budget_bytes=8, pm_spill_enabled=True, row_block_size=2),
        vfs=vfs)
    eng.query("CREATE TABLE u (id INTEGER, v INTEGER) USING csv "
              "OPTIONS (path 'u.csv')")
    expect = eng.query("SELECT v FROM u WHERE id > 3").rows
    pm = eng.positional_map_of("u")
    assert pm._spilled
    for path in pm._spilled.values():
        data = vfs.read_bytes(path)
        vfs.write_bytes(path, data[:len(data) - 3])   # tear mid-row
    assert eng.query("SELECT v FROM u WHERE id > 3").rows == expect
    assert eng.clock.counters.get(CostEvent.AUX_REBUILDS, 0) > 0
    # Healed: subsequent queries keep working.
    assert eng.query("SELECT v FROM u WHERE id > 3").rows == expect


def test_cache_corruption_self_heals():
    vfs = VirtualFS()
    vfs.create("t.csv", b"1,10\n2,20\n3,30\n")
    eng = PostgresRaw(vfs=vfs)
    eng.query("CREATE TABLE t (id INTEGER, v INTEGER) USING csv "
              "OPTIONS (path 't.csv')")
    expect = eng.query("SELECT v FROM t").rows
    cache = eng.cache_of("t")
    for block in cache._blocks.values():
        block._mask = block._mask[:1]        # break the geometry
    assert eng.query("SELECT v FROM t").rows == expect
    assert eng.clock.counters.get(CostEvent.AUX_REBUILDS, 0) > 0


# ---------------------------------------------------------------------------
# Query deadlines
# ---------------------------------------------------------------------------
def big_table_session(**config_kw):
    vfs = VirtualFS()
    vfs.create("big.csv", b"".join(b"%d,%d\n" % (i, i * 3)
                                   for i in range(5000)))
    ses = repro.connect(vfs=vfs, config=PostgresRawConfig(**config_kw))
    cur = ses.cursor()
    cur.execute("CREATE TABLE big (id INTEGER, v INTEGER) "
                "USING csv OPTIONS (path 'big.csv')")
    return ses, cur


def test_execute_timeout_cancels_cooperatively():
    ses, cur = big_table_session()
    cur.execute("SELECT id, v FROM big WHERE v > 9", timeout=1e-6)
    with pytest.raises(OperationalError) as err:
        cur.fetchall()
    assert err.value.code == "QUERY_TIMEOUT"
    assert isinstance(err.value.__cause__, QueryTimeoutError)
    assert err.value.context.get("timeout") == 1e-6
    # Partial cost stayed on the session ledger.
    assert ses.elapsed() > 0
    # The session (and a generous timeout) keep working.
    cur.execute("SELECT count(*) FROM big", timeout=1e9)
    assert cur.fetchall() == [(5000,)]


def test_config_query_deadline_default():
    ses, cur = big_table_session(query_deadline=1e-6)
    cur.execute("SELECT id FROM big")
    with pytest.raises(OperationalError) as err:
        cur.fetchall()
    assert err.value.code == "QUERY_TIMEOUT"
    # Per-execute timeout overrides the config default.
    cur.execute("SELECT count(*) FROM big", timeout=1e9)
    assert cur.fetchall() == [(5000,)]


def test_timeout_not_triggered_when_fast_enough():
    ses, cur = big_table_session()
    cur.execute("SELECT count(*) FROM big", timeout=1e9)
    assert cur.fetchall() == [(5000,)]
    assert cur._job.state == "finished"
