"""Concurrent sessions over one shared engine.

Covers the scheduler contract (FIFO admission, max-in-flight gate,
cooperative batch-boundary interleaving, per-query accounting) and the
differential satellite: two cursors streaming from the same raw CSV
table, interleaved at batch boundaries, must leave the positional map
and binary cache identical to a serial run (structure dumps reused
from the PR 1 differential harness).

"Identical" for the positional map means *content*-identical under the
canonicalization below: every line start, the file length, the spill
set, and every (row-block, attribute) position the map can answer.
The vertical chunk *grouping* is excluded — it records which query's
flush first grouped the attributes, so it is a layout artifact of
workload interleaving order, not of what the map knows (the paper's
map is explicitly workload-shaped, §4.2). The binary cache must match
byte-for-byte."""

import random

import pytest

import repro
from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.workloads.micro import generate_micro_csv

from test_batch_differential import (
    build_engines,
    cache_dump,
    normalized,
    pm_dump,
    random_query,
    random_schema,
    random_table,
)


def canonical_pm(pm):
    """The map's queryable content, independent of chunk grouping."""
    if pm is None:
        return None
    dump = pm_dump(pm)
    positions = {}
    for block, entries in dump["directory"].items():
        for attr, (chunk_key, col) in entries.items():
            matrix = dump["chunks"].get(chunk_key)
            if matrix is not None:
                positions[(block, attr)] = [line[col] for line in matrix]
    return {"line_starts": dump["line_starts"],
            "file_length": dump["file_length"],
            "spilled": dump["spilled"],
            "positions": positions}


def assert_content_match(engine_a, engine_b, table="t"):
    assert canonical_pm(engine_a.positional_map_of(table)) == \
        canonical_pm(engine_b.positional_map_of(table))
    assert cache_dump(engine_a.cache_of(table)) == \
        cache_dump(engine_b.cache_of(table))


def micro_engine(rows=600, block=64, **config_kwargs):
    vfs = VirtualFS()
    schema = generate_micro_csv(vfs, "m.csv", rows=rows, nattrs=8, seed=3)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=block, **config_kwargs),
        vfs=vfs)
    engine.register_csv("m", "m.csv", schema)
    return engine


class TestScheduler:
    def test_fifo_admission_with_gate(self):
        engine = micro_engine()
        s1 = repro.connect(engine=engine, max_in_flight=1)
        s2 = repro.connect(engine=engine)
        scheduler = engine.shared_scheduler()
        assert s1.scheduler is s2.scheduler is scheduler
        assert scheduler.max_in_flight == 1

        c1 = s1.execute("SELECT a1 FROM m")
        assert c1.fetchone() is not None
        assert scheduler.in_flight == 1
        c2 = s2.execute("SELECT a2 FROM m")
        assert scheduler.queued == 1  # gate full: c2 waits

        # Fetching the queued query drives the in-flight one to
        # completion, frees the slot, then admits FIFO.
        rows2 = c2.fetchall()
        assert len(rows2) == 600
        assert scheduler.queued == 0
        # c1 completed while being driven; its rows are all buffered.
        assert len(c1.fetchall()) == 599  # one was fetched above
        assert scheduler.in_flight == 0

    def test_interleaved_cursors_share_gate(self):
        engine = micro_engine()
        s1 = repro.connect(engine=engine, max_in_flight=2)
        s2 = repro.connect(engine=engine)
        c1 = s1.execute("SELECT a1 FROM m WHERE a1 > 0")
        c2 = s2.execute("SELECT a2 FROM m")
        out1, out2 = [], []
        while True:
            chunk1 = c1.fetchmany(50)
            chunk2 = c2.fetchmany(50)
            out1.extend(chunk1)
            out2.extend(chunk2)
            if not chunk1 and not chunk2:
                break
        fresh = micro_engine()
        assert out1 == fresh.query("SELECT a1 FROM m WHERE a1 > 0").rows
        assert out2 == fresh.query("SELECT a2 FROM m").rows

    def test_per_query_accounting_is_disjoint(self):
        engine = micro_engine(rows=400)
        session = repro.connect(engine=engine)
        c1 = session.execute("SELECT a1 FROM m")
        c2 = session.execute("SELECT a1 FROM m")
        # Interleave to completion.
        while c1.fetchmany(64) or c2.fetchmany(64):
            pass
        counters1 = c1.counters()
        counters2 = c2.counters()
        engine_total = engine.counters()
        for event in set(counters1) | set(counters2):
            assert (counters1.get(event, 0) + counters2.get(event, 0)
                    <= engine_total.get(event, 0) + 1e-9), event
        assert c1.elapsed() > 0 and c2.elapsed() > 0
        assert session.elapsed() <= engine.elapsed() + 1e-9

    def test_scheduler_rejects_bad_gate(self):
        engine = micro_engine()
        with pytest.raises(ValueError):
            engine.shared_scheduler(max_in_flight=0)

    def test_queued_job_can_be_cancelled(self):
        engine = micro_engine()
        s = repro.connect(engine=engine, max_in_flight=1)
        c1 = s.execute("SELECT a1 FROM m")
        c1.fetchone()
        c2 = s.execute("SELECT a2 FROM m")
        assert s.scheduler.queued == 1
        c2.close()
        assert s.scheduler.queued == 0
        assert len(c1.fetchall()) == 599


def serial_vs_interleaved(block_size, enable_cache=True,
                          enable_positional_map=True):
    """Run the same two queries serially and interleaved on identical
    engines; return both engines for structure comparison."""
    kwargs = dict(enable_cache=enable_cache,
                  enable_positional_map=enable_positional_map)
    q1 = "SELECT a1, a3 FROM m WHERE a2 < 600000000"
    q2 = "SELECT a2, a4 FROM m"

    serial = micro_engine(block=block_size, **kwargs)
    serial_s = repro.connect(engine=serial)
    rows1_serial = serial_s.query(q1).rows
    rows2_serial = serial_s.query(q2).rows

    inter = micro_engine(block=block_size, **kwargs)
    inter_s = repro.connect(engine=inter, max_in_flight=4)
    c1 = inter_s.execute(q1)
    c2 = inter_s.execute(q2)
    rows1, rows2 = [], []
    while True:  # strict batch-boundary interleave
        chunk1 = c1.fetchmany(block_size)
        chunk2 = c2.fetchmany(block_size)
        rows1.extend(chunk1)
        rows2.extend(chunk2)
        if not chunk1 and not chunk2:
            break
    assert rows1 == rows1_serial
    assert rows2 == rows2_serial
    return serial, inter


class TestConcurrentDifferential:
    @pytest.mark.parametrize("block_size", [16, 64, 128])
    def test_structures_identical_to_serial(self, block_size):
        serial, inter = serial_vs_interleaved(block_size)
        assert_content_match(inter, serial, table="m")

    def test_structures_identical_without_cache(self):
        serial, inter = serial_vs_interleaved(64, enable_cache=False)
        assert canonical_pm(inter.positional_map_of("m")) == \
            canonical_pm(serial.positional_map_of("m"))

    def test_structures_identical_without_pm(self):
        serial, inter = serial_vs_interleaved(
            64, enable_positional_map=False)
        assert cache_dump(inter.cache_of("m")) == \
            cache_dump(serial.cache_of("m"))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_workloads_interleaved_match_scalar_oracle(self, seed):
        """Extend the PR 1 differential harness: the batch engine's
        results fetched through interleaved streaming cursors must
        still match the scalar oracle and the loaded engine. Structure
        contract under interleaving follows the PR 1 partial-scan
        precedent: mid-workload the batch and scalar engines' scans sit
        at different file offsets (different flush granularity), so
        their maps may transiently differ — but after a completed
        full-coverage scan both engines must converge to identical
        content."""
        rng = random.Random(31000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        block_size = rng.choice([1, 3, 8, 17, 64])
        raw_batch, raw_scalar, loaded = build_engines(schema, rows,
                                                      block_size)
        batch_s = repro.connect(engine=raw_batch)
        scalar_s = repro.connect(engine=raw_scalar)
        for _ in range(4):
            sql_a = random_query(rng, schema)
            sql_b = random_query(rng, schema)
            cur_ab = batch_s.execute(sql_a)
            cur_bb = batch_s.execute(sql_b)
            cur_as = scalar_s.execute(sql_a)
            cur_bs = scalar_s.execute(sql_b)
            got = {cur: [] for cur in (cur_ab, cur_bb, cur_as, cur_bs)}
            live = True
            while live:
                live = False
                for cur in got:
                    chunk = cur.fetchmany(7)
                    got[cur].extend(chunk)
                    live = live or bool(chunk)
            for sql, cur_b, cur_s in ((sql_a, cur_ab, cur_as),
                                      (sql_b, cur_bb, cur_bs)):
                reference = normalized(loaded.query(sql))
                assert sorted(map(repr, got[cur_b])) == reference, sql
                assert sorted(map(repr, got[cur_s])) == reference, sql
        # Convergence: one serial full-coverage scan on each engine
        # must leave identical map content and byte-identical caches.
        columns = ", ".join(c.name for c in schema.columns)
        convergence = f"SELECT {columns} FROM t"
        assert normalized(raw_batch.query(convergence)) == \
            normalized(raw_scalar.query(convergence)) == \
            normalized(loaded.query(convergence))
        assert_content_match(raw_batch, raw_scalar)
