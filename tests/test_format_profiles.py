"""Per-format cost calibration through the adapter registry.

Raw formats do not cost the same to tokenize: JSON carries quoting,
key lookup and escape handling per field, so the JSONL adapter
contributes a :class:`~repro.simcost.profiles.CostProfile` override
(tokenize ~3x the CSV rate per byte-equivalent unit) via
``FormatAdapter.cost_profile``. The override shares the engine's
virtual clock — every format's charges land in one simulated timeline
— and must be idempotent so wrapping layers (partitioned tables build
children through engine proxies) can re-derive it without compounding
the factor.
"""

from __future__ import annotations

import math

from repro import PostgresRaw, VirtualFS
from repro.formats.registry import get_format
from repro.simcost.clock import CostEvent
from repro.simcost.model import CostModel


def make_db():
    vfs = VirtualFS()
    vfs.create("t.csv", b"1,2.5,alpha\n2,3.5,beta\n3,4.5,gamma\n")
    vfs.create(
        "t.jsonl",
        b'{"a": 1, "b": 2.5, "c": "alpha"}\n'
        b'{"a": 2, "b": 3.5, "c": "beta"}\n'
        b'{"a": 3, "b": 4.5, "c": "gamma"}\n')
    db = PostgresRaw(vfs=vfs)
    db.query("CREATE TABLE tc (a INTEGER, b FLOAT, c VARCHAR) "
             "USING csv OPTIONS (path 't.csv')")
    db.query("CREATE TABLE tj (a INTEGER, b FLOAT, c VARCHAR) "
             "USING jsonl OPTIONS (path 't.jsonl')")
    return db


class TestScanModelSeam:
    def test_csv_contributes_no_override(self):
        db = make_db()
        assert get_format("csv").cost_profile(db) is None
        assert get_format("csv").scan_model(db) is db.model

    def test_jsonl_scan_model_shares_clock_scales_tokenize(self):
        db = make_db()
        model = get_format("jsonl").scan_model(db)
        assert model is not db.model
        assert model.clock is db.model.clock
        base = db.model.profile
        assert model.profile.name == base.name + "+jsonl"
        assert model.profile.tokenize == base.tokenize * 3.0
        # everything else is untouched
        assert model.profile.convert_int == base.convert_int
        assert model.profile.disk_read_cold == base.disk_read_cold

    def test_jsonl_profile_is_idempotent(self):
        db = make_db()
        adapter = get_format("jsonl")
        once = adapter.cost_profile(db)
        proxy = type("Proxy", (), {
            "model": CostModel(db.model.clock, once)})()
        assert adapter.cost_profile(proxy) is once  # no 9x through proxies

    def test_jsonl_tokenize_advances_clock_3x(self):
        db = make_db()
        jsonl_model = get_format("jsonl").scan_model(db)
        clock = db.model.clock
        before = clock.seconds
        db.model.charge(CostEvent.TOKENIZE, 100)
        csv_cost = clock.seconds - before
        before = clock.seconds
        jsonl_model.charge(CostEvent.TOKENIZE, 100)
        jsonl_cost = clock.seconds - before
        assert math.isclose(jsonl_cost, 3.0 * csv_cost, rel_tol=1e-12)


class TestCrossFormatCost:
    def test_same_rows_cost_more_from_jsonl(self):
        db = make_db()
        rc = db.query("SELECT a, b, c FROM tc WHERE a > 0")
        rj = db.query("SELECT a, b, c FROM tj WHERE a > 0")
        assert rc.rows == rj.rows
        assert rj.elapsed > rc.elapsed

    def test_jsonl_seconds_reconstruct_with_3x_tokenize(self):
        # Every charge of a JSONL scan lands on the shared clock at the
        # base profile's rates except tokenize, billed at 3x. Rebuild
        # the elapsed virtual time from the counters alone.
        db = make_db()
        base = db.model.profile
        r = db.query("SELECT a, c FROM tj WHERE b > 3.0")
        expected = 0.0
        for name, units in r.counters.items():
            rate = base.rate(CostEvent(name))
            if name == "tokenize":
                rate *= 3.0
            expected += units * rate
        assert math.isclose(r.elapsed, expected, rel_tol=1e-9)

    def test_csv_seconds_reconstruct_at_base_rates(self):
        db = make_db()
        base = db.model.profile
        r = db.query("SELECT a, c FROM tc WHERE b > 3.0")
        expected = sum(units * base.rate(CostEvent(name))
                       for name, units in r.counters.items())
        assert math.isclose(r.elapsed, expected, rel_tol=1e-9)
