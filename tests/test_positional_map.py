"""Tests for the adaptive positional map (§4.2)."""

import numpy as np
import pytest

from repro.core.positional_map import PositionalMap
from repro.errors import StorageError
from repro.simcost.clock import CostEvent
from repro.simcost.model import CostModel
from repro.storage.vfs import VirtualFS


def make_map(budget=None, spill=False, block=4, nattrs=10):
    model = CostModel()
    vfs = VirtualFS() if spill else None
    pm = PositionalMap(model, nattrs, row_block_size=block,
                       budget_bytes=budget, spill_vfs=vfs)
    return pm, model, vfs


class TestLineIndex:
    def test_append_and_lookup(self):
        pm, _, _ = make_map()
        pm.append_line_start(0)
        pm.append_line_start(50)
        assert pm.known_line_count == 2
        assert pm.line_start(0) == 0
        assert pm.line_start(1) == 50
        assert pm.line_start(2) is None

    def test_line_starts_must_increase(self):
        pm, _, _ = make_map()
        pm.append_line_start(10)
        with pytest.raises(StorageError):
            pm.append_line_start(10)

    def test_line_span_needs_next_line_or_eof(self):
        pm, _, _ = make_map()
        pm.append_line_start(0)
        pm.append_line_start(50)
        assert pm.line_span(0) == (0, 49)    # excludes the newline
        assert pm.line_span(1) is None       # end unknown
        pm.set_file_length(100)
        assert pm.line_span(1) == (50, 99)   # file ends with newline

    def test_invalidate_file_length(self):
        pm, _, _ = make_map()
        pm.append_line_start(0)
        pm.set_file_length(10)
        pm.invalidate_file_length()
        assert pm.line_span(0) is None

    def test_lookups_charge_map_access(self):
        pm, model, _ = make_map()
        pm.append_line_start(0)
        pm.append_line_start(9)
        pm.line_span(0)
        assert model.count(CostEvent.MAP_ACCESS) == 2
        assert model.count(CostEvent.MAP_INSERT) == 2


class TestChunks:
    def test_insert_and_lookup(self):
        pm, _, _ = make_map()
        matrix = np.array([[5, 12], [6, 14], [5, 11], [7, 15]],
                          dtype=np.int32)
        pm.insert_chunk((3, 7), 0, matrix)
        assert pm.position(0, 3) == 5
        assert pm.position(3, 7) == 15
        assert pm.position(0, 4) is None    # attr not indexed
        assert pm.position(9, 3) is None    # row outside block rows

    def test_positions_column(self):
        pm, _, _ = make_map()
        pm.insert_chunk((2,), 1, np.array([[9], [8]], dtype=np.int32))
        column = pm.positions(1, 2)
        assert list(column) == [9, 8]
        assert pm.positions(0, 2) is None

    def test_group_order_preserved(self):
        # "attributes do not necessarily appear in the map in the same
        # order as in the raw file" — group (7, 3) stores 7 first.
        pm, _, _ = make_map()
        matrix = np.array([[70, 30]], dtype=np.int32)
        pm.insert_chunk((7, 3), 0, matrix)
        assert pm.position(0, 7) == 70
        assert pm.position(0, 3) == 30

    def test_shape_mismatch_rejected(self):
        pm, _, _ = make_map()
        with pytest.raises(StorageError):
            pm.insert_chunk((1, 2), 0, np.zeros((4, 3), dtype=np.int32))

    def test_indexed_attrs_sorted(self):
        pm, _, _ = make_map()
        pm.insert_chunk((7, 2), 0, np.zeros((4, 2), dtype=np.int32))
        pm.insert_chunk((5,), 0, np.zeros((4, 1), dtype=np.int32))
        assert pm.indexed_attrs(0) == [2, 5, 7]
        assert pm.indexed_attrs(1) == []

    def test_nearest_indexed(self):
        pm, _, _ = make_map()
        pm.insert_chunk((2, 6), 0, np.zeros((4, 2), dtype=np.int32))
        assert pm.nearest_indexed(0, 4) == (2, 6)
        assert pm.nearest_indexed(0, 1) == (None, 2)
        assert pm.nearest_indexed(0, 8) == (6, None)
        assert pm.nearest_indexed(0, 2) == (2, 6)

    def test_reinsert_overwrites(self):
        pm, _, _ = make_map()
        pm.insert_chunk((1,), 0, np.array([[10]], dtype=np.int32))
        pm.insert_chunk((1,), 0, np.array([[20]], dtype=np.int32))
        assert pm.position(0, 1) == 20

    def test_block_of(self):
        pm, _, _ = make_map(block=4)
        assert pm.block_of(0) == 0
        assert pm.block_of(3) == 0
        assert pm.block_of(4) == 1


class TestBudgetAndEviction:
    def chunk_bytes(self, rows, attrs):
        return rows * attrs * 4

    def test_budget_enforced_lru(self):
        # Budget of two 4x1 chunks; inserting a third evicts the LRU.
        pm, _, _ = make_map(budget=2 * self.chunk_bytes(4, 1))
        for block in range(3):
            pm.insert_chunk((1,), block,
                            np.full((4, 1), block, dtype=np.int32))
        assert pm.chunk_bytes <= 2 * self.chunk_bytes(4, 1)
        assert pm.position(0, 1) is None          # block 0 evicted
        assert pm.position(4, 1) == 1             # block 1 retained
        assert pm.evictions == 1

    def test_access_refreshes_lru(self):
        pm, _, _ = make_map(budget=2 * self.chunk_bytes(4, 1))
        pm.insert_chunk((1,), 0, np.zeros((4, 1), dtype=np.int32))
        pm.insert_chunk((1,), 1, np.ones((4, 1), dtype=np.int32))
        pm.position(0, 1)                          # touch block 0
        pm.insert_chunk((1,), 2, np.full((4, 1), 2, dtype=np.int32))
        assert pm.position(0, 1) == 0              # block 0 survived
        assert pm.position(4, 1) is None           # block 1 evicted

    def test_eviction_never_serves_wrong_positions(self):
        # The §5 invariant: a dropped map region is a miss, not a lie.
        pm, _, _ = make_map(budget=self.chunk_bytes(4, 1))
        pm.insert_chunk((1,), 0, np.array([[11], [12], [13], [14]],
                                          dtype=np.int32))
        pm.insert_chunk((1,), 1, np.array([[21], [22], [23], [24]],
                                          dtype=np.int32))
        for row in range(4):
            value = pm.position(row, 1)
            assert value is None or value == 11 + row
        for row in range(4, 8):
            value = pm.position(row, 1)
            assert value is None or value == 21 + (row - 4)

    def test_unlimited_budget_never_evicts(self):
        pm, _, _ = make_map(budget=None)
        for block in range(50):
            pm.insert_chunk((1,), block, np.zeros((4, 1), dtype=np.int32))
        assert pm.evictions == 0

    def test_pointer_count(self):
        pm, _, _ = make_map()
        pm.append_line_start(0)
        pm.insert_chunk((1, 2), 0, np.zeros((4, 2), dtype=np.int32))
        assert pm.pointer_count == 1 + 8

    def test_bytes_used_tracks_line_index_and_chunks(self):
        pm, _, _ = make_map()
        pm.append_line_start(0)
        assert pm.bytes_used == 8
        pm.insert_chunk((1,), 0, np.zeros((4, 1), dtype=np.int32))
        assert pm.bytes_used == 8 + 16

    def test_drop_clears_everything(self):
        pm, _, _ = make_map()
        pm.append_line_start(0)
        pm.insert_chunk((1,), 0, np.zeros((4, 1), dtype=np.int32))
        pm.drop()
        assert pm.known_line_count == 0
        assert pm.pointer_count == 0
        assert pm.position(0, 1) is None


class TestSpill:
    def test_evicted_chunk_spills_and_reloads(self):
        pm, model, vfs = make_map(budget=16, spill=True)
        pm.insert_chunk((1,), 0, np.array([[11], [12], [13], [14]],
                                          dtype=np.int32))
        pm.insert_chunk((1,), 1, np.array([[21], [22], [23], [24]],
                                          dtype=np.int32))
        assert pm.evictions == 1
        assert len(vfs.listdir("__pm_spill__/")) == 1
        # Reading the spilled block reloads it, charging disk I/O.
        io_before = model.count(CostEvent.DISK_READ_COLD)
        assert pm.position(0, 1) == 11
        assert model.count(CostEvent.DISK_READ_COLD) > io_before
        assert pm.spill_loads == 1

    def test_spill_preserves_values_exactly(self):
        pm, _, vfs = make_map(budget=16, spill=True)
        original = np.array([[7], [1000000], [0], [2 ** 30]], dtype=np.int32)
        pm.insert_chunk((3,), 0, original)
        pm.insert_chunk((3,), 1, np.zeros((4, 1), dtype=np.int32))  # evict
        for row in range(4):
            assert pm.position(row, 3) == int(original[row, 0])

    def test_without_spill_evicted_is_gone(self):
        pm, _, _ = make_map(budget=16, spill=False)
        pm.insert_chunk((1,), 0, np.zeros((4, 1), dtype=np.int32))
        pm.insert_chunk((1,), 1, np.ones((4, 1), dtype=np.int32))
        assert pm.position(0, 1) is None
