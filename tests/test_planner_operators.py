"""Tests for the planner's plan shapes and operator semantics."""

import pytest

from repro import (
    INTEGER,
    LoadedDBMS,
    PostgresRaw,
    Schema,
    VirtualFS,
    varchar,
)
from repro.errors import PlanningError
from repro.simcost.clock import CostEvent


@pytest.fixture
def db():
    vfs = VirtualFS()
    vfs.create("orders.csv",
               b"1,100,a\n2,200,b\n3,150,a\n4,300,c\n5,50,b\n")
    vfs.create("customers.csv", b"a,usa\nb,france\nc,japan\n")
    engine = PostgresRaw(vfs=vfs)
    engine.register_csv(
        "orders", "orders.csv",
        Schema([("o_id", INTEGER), ("amount", INTEGER),
                ("cust", varchar())]))
    engine.register_csv(
        "customers", "customers.csv",
        Schema([("c_id", varchar()), ("country", varchar())]))
    return engine


def op_names(plan):
    names = []
    node = plan
    while node:
        names.append(node["op"])
        node = (node.get("input") or node.get("left")
                or node.get("outer"))
    return names


class TestPlanShapes:
    def test_pushdown_reaches_scan(self, db):
        plan = db.explain("SELECT o_id FROM orders WHERE amount > 100 "
                          "AND cust = 'a'")
        scan = plan["input"]
        assert scan["op"] == "Scan"
        assert scan["pushed_predicates"] == 2

    def test_join_predicate_becomes_hash_join(self, db):
        plan = db.explain(
            "SELECT o_id FROM orders, customers WHERE cust = c_id")
        assert "HashJoin" in op_names(plan)
        assert "NestedLoopJoin" not in op_names(plan)

    def test_cross_join_without_edge(self, db):
        plan = db.explain("SELECT o_id FROM orders, customers")
        assert "NestedLoopJoin" in op_names(plan)

    def test_residual_multi_table_predicate_filters_after_join(self, db):
        plan = db.explain(
            "SELECT o_id FROM orders, customers "
            "WHERE cust = c_id AND (amount > 100 OR country = 'usa')")
        assert "Filter" in op_names(plan)

    def test_exists_becomes_semijoin(self, db):
        plan = db.explain(
            "SELECT c_id FROM customers WHERE EXISTS "
            "(SELECT * FROM orders WHERE cust = c_id)")
        assert "HashSemiJoin" in op_names(plan)

    def test_aggregate_and_sort_and_limit(self, db):
        plan = db.explain(
            "SELECT cust, sum(amount) AS total FROM orders "
            "GROUP BY cust ORDER BY total DESC LIMIT 2")
        names = op_names(plan)
        assert names[0] == "Limit"
        assert "Aggregate" in names
        assert "Sort" in names

    def test_having_adds_filter(self, db):
        plan = db.explain(
            "SELECT cust, count(*) FROM orders GROUP BY cust "
            "HAVING count(*) > 1")
        assert "Having" in op_names(plan)

    def test_scan_column_pruning(self, db):
        plan = db.explain("SELECT o_id FROM orders WHERE amount > 100")
        scan = plan["input"]
        # Only o_id is in the scan output; amount lives in the pushed
        # predicate, not the output.
        assert scan["columns"] == 1

    def test_ambiguous_column_rejected(self, db):
        db.vfs.create("dup.csv", b"1,2\n")
        db.register_csv("dup", "dup.csv",
                        Schema([("o_id", INTEGER), ("x", INTEGER)]))
        with pytest.raises(PlanningError):
            db.query("SELECT o_id FROM orders, dup")

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT 1 FROM orders, orders")

    def test_correlated_ref_outside_exists_rejected(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT country FROM orders")

    def test_uncorrelated_exists_rejected(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT o_id FROM orders WHERE EXISTS "
                     "(SELECT * FROM customers WHERE c_id = 'a')")

    def test_nonequality_correlation_rejected(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT c_id FROM customers WHERE EXISTS "
                     "(SELECT * FROM orders WHERE cust > c_id)")

    def test_constant_false_where_yields_empty(self, db):
        result = db.query("SELECT o_id FROM orders WHERE 1 = 2")
        assert result.rows == []

    def test_constant_true_where_is_noop(self, db):
        result = db.query("SELECT o_id FROM orders WHERE 1 = 1")
        assert len(result) == 5


class TestOperatorSemantics:
    def test_join_output(self, db):
        result = db.query(
            "SELECT o_id, country FROM orders, customers "
            "WHERE cust = c_id ORDER BY o_id")
        assert result.rows == [
            (1, "usa"), (2, "france"), (3, "usa"), (4, "japan"),
            (5, "france")]

    def test_join_with_nulls_never_matches(self, db):
        db.vfs.create("n.csv", b"1,\n2,a\n")
        db.register_csv("n", "n.csv",
                        Schema([("k", INTEGER), ("ref", varchar())]))
        result = db.query(
            "SELECT k FROM n, customers WHERE ref = c_id")
        assert result.rows == [(2,)]

    def test_group_by_expression(self, db):
        result = db.query(
            "SELECT amount / 100, count(*) FROM orders "
            "GROUP BY amount / 100 ORDER BY amount / 100")
        # amounts 100,200,150,300,50 -> /100 (float): all distinct groups
        assert result.rows == [(0.5, 1), (1.0, 1), (1.5, 1), (2.0, 1),
                               (3.0, 1)]

    def test_order_by_nulls_last_asc(self, db):
        db.vfs.create("nv.csv", b"1,\n2,5\n3,2\n")
        db.register_csv("nv", "nv.csv",
                        Schema([("k", INTEGER), ("v", INTEGER)]))
        result = db.query("SELECT k FROM nv ORDER BY v")
        assert result.column("k") == [3, 2, 1]

    def test_order_by_desc_nulls_first(self, db):
        db.vfs.create("nv2.csv", b"1,\n2,5\n3,2\n")
        db.register_csv("nv2", "nv2.csv",
                        Schema([("k", INTEGER), ("v", INTEGER)]))
        result = db.query("SELECT k FROM nv2 ORDER BY v DESC")
        assert result.column("k") == [1, 2, 3]

    def test_limit_zero(self, db):
        assert db.query("SELECT o_id FROM orders LIMIT 0").rows == []

    def test_count_distinct(self, db):
        result = db.query("SELECT count(DISTINCT cust) FROM orders")
        assert result.scalar() == 3

    def test_sum_of_empty_group_is_null(self, db):
        result = db.query(
            "SELECT sum(amount), count(*) FROM orders WHERE amount > 999")
        assert result.rows == [(None, 0)]

    def test_avg_ignores_nulls(self, db):
        db.vfs.create("av.csv", b"1,10\n2,\n3,20\n")
        db.register_csv("av", "av.csv",
                        Schema([("k", INTEGER), ("v", INTEGER)]))
        result = db.query("SELECT avg(v), count(v), count(*) FROM av")
        assert result.rows == [(15.0, 2, 3)]

    def test_min_max_on_strings(self, db):
        result = db.query("SELECT min(cust), max(cust) FROM orders")
        assert result.rows == [("a", "c")]

    def test_multi_key_sort_mixed_direction(self, db):
        result = db.query(
            "SELECT cust, amount FROM orders ORDER BY cust ASC, "
            "amount DESC")
        assert result.rows == [
            ("a", 150), ("a", 100), ("b", 200), ("b", 50), ("c", 300)]


class TestCostCharging:
    def test_sort_charges_compares(self, db):
        db.query("SELECT o_id FROM orders ORDER BY amount")
        assert db.model.count(CostEvent.SORT_COMPARE) > 0

    def test_hash_join_charges_probes(self, db):
        db.query("SELECT o_id FROM orders, customers WHERE cust = c_id")
        assert db.model.count(CostEvent.HASH_PROBE) >= 8

    def test_aggregate_charges_steps(self, db):
        db.query("SELECT sum(amount) FROM orders")
        assert db.model.count(CostEvent.AGGREGATE_STEP) == 5


class TestBuildSideChoice:
    def test_build_on_smaller_side(self):
        # 3-row customers should be the hash build side against 1000-row
        # orders, whichever order stats imply.
        vfs = VirtualFS()
        lines = [f"{i},{i % 3}".encode() for i in range(1000)]
        vfs.create("big.csv", b"\n".join(lines) + b"\n")
        vfs.create("small.csv", b"0,x\n1,y\n2,z\n")
        db = LoadedDBMS(vfs=vfs)
        db.load_csv("big", "big.csv",
                    Schema([("b_id", INTEGER), ("b_ref", INTEGER)]))
        db.load_csv("small", "small.csv",
                    Schema([("s_id", INTEGER), ("s_val", varchar())]))
        plan = db.explain(
            "SELECT b_id FROM big, small WHERE b_ref = s_id")
        def find(node, op):
            if node["op"] == op:
                return node
            for key in ("input", "left", "right", "outer", "inner"):
                if key in node:
                    found = find(node[key], op)
                    if found:
                        return found
            return None
        join = find(plan, "HashJoin")
        assert join is not None
        # The right (build) side scans the small table.
        assert join["right"]["table"] == "small"
        assert join["left"]["table"] == "big"
