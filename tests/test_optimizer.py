"""Tests for the statistics-driven optimizer."""

import pytest

from repro.sql.catalog import Schema, TableInfo, TableKind
from repro.sql.datatypes import INTEGER, varchar
from repro.sql.optimizer import DEFAULT_ROWS, Optimizer
from repro.sql.parser import parse_expression
from repro.sql.stats import ColumnStats, TableStats


def table_with_stats(row_count=10_000, columns=()):
    stats = TableStats(row_count=row_count)
    for column in columns:
        stats.set_column(column)
    return TableInfo(name="t", schema=Schema([("x", INTEGER),
                                              ("s", varchar())]),
                     kind=TableKind.RAW_CSV, path="t.csv", stats=stats)


def uniform_column(name="x", lo=0, hi=999):
    column = ColumnStats(name=name)
    column.merge_sample(list(range(lo, hi + 1)), hi - lo + 1, 0,
                        hi - lo + 1)
    return column


class TestCardinalities:
    def test_base_rows_prefers_stats(self):
        info = table_with_stats(row_count=5000)
        assert Optimizer().base_rows(info) == 5000

    def test_base_rows_falls_back_to_hint(self):
        info = table_with_stats(row_count=5000)
        info.stats = None
        info.row_count_hint = 700
        assert Optimizer().base_rows(info) == 700

    def test_base_rows_default(self):
        info = table_with_stats()
        info.stats = None
        assert Optimizer().base_rows(info) == DEFAULT_ROWS

    def test_stats_disabled_ignores_stats(self):
        info = table_with_stats(row_count=5000)
        info.row_count_hint = 700
        assert Optimizer(use_stats=False).base_rows(info) == 700

    def test_scan_rows_applies_selectivity(self):
        info = table_with_stats(columns=[uniform_column()])
        conjunct = parse_expression("x < 100")
        rows = Optimizer().scan_rows(info, [conjunct])
        assert rows == pytest.approx(1000, rel=0.3)


class TestSelectivity:
    def setup_method(self):
        self.optimizer = Optimizer()
        self.info = table_with_stats(columns=[uniform_column()])

    def sel(self, text):
        return self.optimizer.conjunct_selectivity(
            self.info, parse_expression(text))

    def test_equality_with_stats(self):
        assert self.sel("x = 5") < 0.01

    def test_range_with_stats(self):
        assert self.sel("x < 500") == pytest.approx(0.5, abs=0.1)
        assert self.sel("x >= 900") == pytest.approx(0.1, abs=0.05)

    def test_flipped_comparison(self):
        assert self.sel("500 > x") == pytest.approx(self.sel("x < 500"),
                                                    abs=0.01)

    def test_between(self):
        assert self.sel("x BETWEEN 100 AND 300") == pytest.approx(
            0.2, abs=0.1)

    def test_not_between(self):
        assert self.sel("x NOT BETWEEN 100 AND 300") == pytest.approx(
            0.8, abs=0.1)

    def test_in_list_sums(self):
        single = self.sel("x = 5")
        triple = self.sel("x IN (5, 6, 7)")
        assert triple == pytest.approx(3 * single, rel=0.01)

    def test_or_combines(self):
        either = self.sel("x < 100 OR x >= 900")
        assert either == pytest.approx(0.2, abs=0.1)

    def test_not_inverts(self):
        assert self.sel("NOT x < 100") == pytest.approx(
            1 - self.sel("x < 100"), abs=0.01)

    def test_like_default(self):
        assert self.sel("s LIKE 'abc%'") == pytest.approx(0.1)

    def test_no_stats_defaults(self):
        info = table_with_stats()
        info.stats = None
        optimizer = Optimizer()
        assert optimizer.conjunct_selectivity(
            info, parse_expression("x = 5")) == pytest.approx(0.005)
        assert optimizer.conjunct_selectivity(
            info, parse_expression("x < 5")) == pytest.approx(1 / 3)

    def test_constant_date_arithmetic_resolved(self):
        import datetime
        column = ColumnStats(name="x")
        base = datetime.date(1994, 1, 1)
        column.merge_sample(
            [base + datetime.timedelta(days=i) for i in range(0, 1000)],
            1000, 0, 1000)
        info = table_with_stats(columns=[column])
        sel = Optimizer().conjunct_selectivity(
            info,
            parse_expression("x < DATE '1994-01-01' + INTERVAL '1' YEAR"))
        assert sel == pytest.approx(365 / 1000, abs=0.1)


class TestJoinOrdering:
    def test_smallest_first(self):
        optimizer = Optimizer()
        order = optimizer.order_bindings(
            ["big", "small", "mid"],
            {"big": 1e6, "small": 10.0, "mid": 1e3},
            {("big", "small"), ("big", "mid")})
        assert order[0] == "small"

    def test_connected_preferred(self):
        optimizer = Optimizer()
        order = optimizer.order_bindings(
            ["a", "b", "c"],
            {"a": 10.0, "b": 100.0, "c": 20.0},
            {("a", "b")})
        # c is smaller than b but disconnected from a: b joins first.
        assert order == ["a", "b", "c"]

    def test_single_table(self):
        assert Optimizer().order_bindings(["t"], {"t": 5.0}, set()) == ["t"]

    def test_chain_follows_edges(self):
        optimizer = Optimizer()
        order = optimizer.order_bindings(
            ["lineitem", "orders", "customer", "nation"],
            {"lineitem": 6e6, "orders": 1.5e6, "customer": 1.5e5,
             "nation": 25.0},
            {("customer", "orders"), ("lineitem", "orders"),
             ("customer", "nation")})
        assert order[0] == "nation"
        assert order[1] == "customer"
        # Every subsequent table connects to the already-joined set.
        assert order.index("orders") < order.index("lineitem")


class TestAggStrategy:
    def test_no_group_by_is_hash(self):
        assert Optimizer().agg_strategy([], 1e6, has_group_by=False) == \
            "hash"

    def test_stats_available_small_groups_hash(self):
        info = table_with_stats(columns=[uniform_column()])
        strategy = Optimizer().agg_strategy([(info, "x")], 1e6, True)
        assert strategy == "hash"

    def test_missing_stats_fall_back_to_sort(self):
        info = table_with_stats()
        info.stats = None
        assert Optimizer().agg_strategy([(info, "x")], 1e6, True) == "sort"

    def test_stats_disabled_always_sort(self):
        info = table_with_stats(columns=[uniform_column()])
        strategy = Optimizer(use_stats=False).agg_strategy(
            [(info, "x")], 1e6, True)
        assert strategy == "sort"

    def test_huge_group_count_sorts(self):
        column = ColumnStats(name="x", n_distinct=10 ** 9)
        info = table_with_stats(columns=[column])
        assert Optimizer().agg_strategy([(info, "x")], 1e12, True) == "sort"
