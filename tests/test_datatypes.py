"""Tests for SQL data types and conversion."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeError_
from repro.sql.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    Interval,
    char,
    decimal,
    type_from_sql,
    varchar,
)


class TestInteger:
    def test_parse(self):
        assert INTEGER.parse("42") == 42
        assert INTEGER.parse("-7") == -7

    def test_parse_garbage_raises(self):
        with pytest.raises(TypeError_):
            INTEGER.parse("4.2")
        with pytest.raises(TypeError_):
            INTEGER.parse("abc")

    def test_format_roundtrip(self):
        assert INTEGER.parse(INTEGER.format(123456789)) == 123456789

    def test_bigint_is_int_family(self):
        assert BIGINT.family == "int"
        assert BIGINT.parse("9999999999999") == 9999999999999


class TestFloat:
    def test_parse(self):
        assert FLOAT.parse("3.5") == 3.5
        assert FLOAT.parse("-1e3") == -1000.0

    def test_parse_garbage_raises(self):
        with pytest.raises(TypeError_):
            FLOAT.parse("x")

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_format_roundtrip(self, value):
        assert FLOAT.parse(FLOAT.format(value)) == value


class TestDecimal:
    def test_is_float_family(self):
        assert decimal(15, 2).family == "float"

    def test_format_uses_scale(self):
        assert decimal(15, 2).format(3.14159) == "3.14"
        assert decimal(15, 4).format(3.14159) == "3.1416"

    def test_name_includes_args(self):
        assert decimal(15, 2).name == "DECIMAL(15,2)"


class TestVarcharChar:
    def test_varchar_identity(self):
        assert varchar(10).parse(" abc ") == " abc "

    def test_char_strips_trailing_pad(self):
        assert char(5).parse("ab   ") == "ab"
        assert char(5).parse("  ab") == "  ab"

    def test_names(self):
        assert varchar(10).name == "VARCHAR(10)"
        assert varchar().name == "VARCHAR"
        assert char(3).name == "CHAR(3)"


class TestDate:
    def test_parse(self):
        assert DATE.parse("2001-05-20") == datetime.date(2001, 5, 20)

    def test_parse_garbage_raises(self):
        with pytest.raises(TypeError_):
            DATE.parse("2001/05/20x")
        with pytest.raises(TypeError_):
            DATE.parse("not-a-date")
        with pytest.raises(TypeError_):
            DATE.parse("2001-13-40")

    @given(st.dates())
    def test_format_roundtrip(self, value):
        assert DATE.parse(DATE.format(value)) == value


class TestBoolean:
    @pytest.mark.parametrize("text", ["t", "true", "TRUE", "1", "yes"])
    def test_truthy(self, text):
        assert BOOLEAN.parse(text) is True

    @pytest.mark.parametrize("text", ["f", "false", "FALSE", "0", "no"])
    def test_falsy(self, text):
        assert BOOLEAN.parse(text) is False

    def test_garbage_raises(self):
        with pytest.raises(TypeError_):
            BOOLEAN.parse("maybe")

    def test_format(self):
        assert BOOLEAN.format(True) == "true"
        assert BOOLEAN.format(False) == "false"


class TestInterval:
    def test_add_days(self):
        d = datetime.date(1998, 12, 1)
        assert Interval(days=90).subtract_from(d) == datetime.date(1998, 9, 2)

    def test_add_months_wraps_year(self):
        d = datetime.date(1993, 11, 15)
        assert Interval(months=3).add_to(d) == datetime.date(1994, 2, 15)

    def test_month_end_clamping(self):
        d = datetime.date(2001, 1, 31)
        assert Interval(months=1).add_to(d) == datetime.date(2001, 2, 28)

    def test_years(self):
        d = datetime.date(1994, 1, 1)
        assert Interval(years=1).add_to(d) == datetime.date(1995, 1, 1)

    def test_subtract_months(self):
        d = datetime.date(1994, 2, 15)
        assert Interval(months=3).subtract_from(d) == datetime.date(
            1993, 11, 15)

    @given(st.dates(min_value=datetime.date(1900, 1, 2),
                    max_value=datetime.date(2100, 1, 1)),
           st.integers(-500, 500))
    def test_day_arithmetic_matches_timedelta(self, date, days):
        assert Interval(days=days).add_to(date) == date + datetime.timedelta(
            days)


class TestTypeFromSql:
    @pytest.mark.parametrize("name,expected", [
        ("INT", INTEGER), ("integer", INTEGER), ("BIGINT", BIGINT),
        ("FLOAT", FLOAT), ("double", FLOAT), ("REAL", FLOAT),
        ("DATE", DATE), ("BOOLEAN", BOOLEAN), ("bool", BOOLEAN),
    ])
    def test_simple_types(self, name, expected):
        assert type_from_sql(name) == expected

    def test_parameterized(self):
        assert type_from_sql("VARCHAR", (25,)).name == "VARCHAR(25)"
        assert type_from_sql("CHAR", (10,)).name == "CHAR(10)"
        assert type_from_sql("DECIMAL", (15, 2)).name == "DECIMAL(15,2)"
        assert type_from_sql("NUMERIC", (8,)).name == "DECIMAL(8,0)"

    def test_defaults(self):
        assert type_from_sql("VARCHAR").name == "VARCHAR"
        assert type_from_sql("DECIMAL").name == "DECIMAL(15,2)"

    def test_unknown_raises(self):
        with pytest.raises(TypeError_):
            type_from_sql("GEOMETRY")

    def test_equality_by_name(self):
        assert decimal(15, 2) == decimal(15, 2)
        assert decimal(15, 2) != decimal(15, 3)
        assert varchar(5) != char(5)
        assert hash(decimal(15, 2)) == hash(decimal(15, 2))
