"""Tests for expression analysis and compilation."""

import datetime

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.sql.ast_nodes import ColumnRef, Literal
from repro.sql.expressions import (
    collect_aggregates,
    collect_column_refs,
    compile_expr,
    conjoin,
    contains_aggregate,
    expr_key,
    like_to_regex,
    split_conjuncts,
)
from repro.sql.parser import parse_expression


def compile_with(sql_expr, layout):
    """Compile against a name->index layout (bare column names)."""
    expr = parse_expression(sql_expr)

    def resolver(node):
        if isinstance(node, ColumnRef) and node.table is None:
            return layout.get(node.name)
        return None
    return compile_expr(expr, resolver)


class TestCollect:
    def test_column_refs_deduplicated_in_order(self):
        expr = parse_expression("a + b * a + c")
        refs = collect_column_refs(expr)
        assert [r.name for r in refs] == ["a", "b", "c"]

    def test_refs_inside_all_node_kinds(self):
        expr = parse_expression(
            "CASE WHEN a LIKE 'x%' THEN b ELSE c END + "
            "(d BETWEEN e AND f) + (g IN (h, 1)) + (i IS NULL)")
        names = {r.name for r in collect_column_refs(expr)}
        assert names == set("abcdefghi")

    def test_aggregates_deduplicated(self):
        expr = parse_expression("sum(x) + sum(x) + avg(y)")
        aggs = collect_aggregates(expr)
        assert [a.name for a in aggs] == ["sum", "avg"]

    def test_contains_aggregate(self):
        assert contains_aggregate(parse_expression("1 + max(x)"))
        assert not contains_aggregate(parse_expression("1 + x"))

    def test_none_input(self):
        assert collect_column_refs(None) == []
        assert collect_aggregates(None) == []


class TestConjuncts:
    def test_split_nested_ands(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert len(split_conjuncts(expr)) == 3

    def test_or_not_split(self):
        expr = parse_expression("a = 1 OR b = 2")
        assert len(split_conjuncts(expr)) == 1

    def test_conjoin_roundtrip(self):
        conjuncts = split_conjuncts(parse_expression("a = 1 AND b = 2"))
        rebuilt = conjoin(conjuncts)
        assert split_conjuncts(rebuilt) == conjuncts

    def test_conjoin_empty(self):
        assert conjoin([]) is None

    def test_split_none(self):
        assert split_conjuncts(None) == []


class TestExprKey:
    def test_equal_structures_equal_keys(self):
        assert expr_key(parse_expression("a + 1")) == expr_key(
            parse_expression("a + 1"))

    def test_different_structures_differ(self):
        assert expr_key(parse_expression("a + 1")) != expr_key(
            parse_expression("a + 2"))


class TestArithmetic:
    def test_basic(self):
        fn = compile_with("a + b * 2", {"a": 0, "b": 1})
        assert fn((10, 5)) == 20

    def test_division_is_float(self):
        fn = compile_with("a / b", {"a": 0, "b": 1})
        assert fn((7, 2)) == 3.5

    def test_division_by_zero_raises(self):
        fn = compile_with("a / b", {"a": 0, "b": 1})
        with pytest.raises(ExecutionError):
            fn((1, 0))

    def test_null_propagates(self):
        fn = compile_with("a + b", {"a": 0, "b": 1})
        assert fn((None, 5)) is None

    def test_unary_minus(self):
        fn = compile_with("-a", {"a": 0})
        assert fn((3,)) == -3
        assert fn((None,)) is None

    def test_date_minus_interval(self):
        fn = compile_with("a - INTERVAL '90' DAY", {"a": 0})
        assert fn((datetime.date(1998, 12, 1),)) == datetime.date(1998, 9, 2)

    def test_date_plus_interval_months(self):
        fn = compile_with("a + INTERVAL '3' MONTH", {"a": 0})
        assert fn((datetime.date(1993, 7, 1),)) == datetime.date(1993, 10, 1)


class TestComparisons:
    def test_all_operators(self):
        row = (5, 7)
        layout = {"a": 0, "b": 1}
        assert compile_with("a < b", layout)(row) is True
        assert compile_with("a > b", layout)(row) is False
        assert compile_with("a <= b", layout)(row) is True
        assert compile_with("a >= b", layout)(row) is False
        assert compile_with("a = b", layout)(row) is False
        assert compile_with("a <> b", layout)(row) is True

    def test_null_comparison_is_unknown(self):
        fn = compile_with("a = b", {"a": 0, "b": 1})
        assert fn((None, 1)) is None

    def test_date_comparison(self):
        fn = compile_with("a <= DATE '1998-09-02'", {"a": 0})
        assert fn((datetime.date(1998, 9, 2),)) is True
        assert fn((datetime.date(1998, 9, 3),)) is False


class TestKleeneLogic:
    layout = {"a": 0, "b": 1}

    def test_and_truth_table(self):
        fn = compile_with("a AND b", self.layout)
        assert fn((True, True)) is True
        assert fn((True, False)) is False
        assert fn((False, None)) is False      # short-circuit
        assert fn((None, False)) is False
        assert fn((True, None)) is None
        assert fn((None, None)) is None

    def test_or_truth_table(self):
        fn = compile_with("a OR b", self.layout)
        assert fn((False, False)) is False
        assert fn((True, None)) is True
        assert fn((None, True)) is True
        assert fn((False, None)) is None
        assert fn((None, None)) is None

    def test_not(self):
        fn = compile_with("NOT a", {"a": 0})
        assert fn((True,)) is False
        assert fn((False,)) is True
        assert fn((None,)) is None


class TestPredicates:
    def test_between(self):
        fn = compile_with("a BETWEEN 2 AND 4", {"a": 0})
        assert fn((3,)) is True
        assert fn((2,)) is True
        assert fn((5,)) is False
        assert fn((None,)) is None

    def test_not_between(self):
        fn = compile_with("a NOT BETWEEN 2 AND 4", {"a": 0})
        assert fn((5,)) is True
        assert fn((3,)) is False

    def test_in_list(self):
        fn = compile_with("a IN ('x', 'y')", {"a": 0})
        assert fn(("x",)) is True
        assert fn(("z",)) is False
        assert fn((None,)) is None

    def test_not_in(self):
        fn = compile_with("a NOT IN ('x')", {"a": 0})
        assert fn(("z",)) is True
        assert fn(("x",)) is False

    def test_like(self):
        fn = compile_with("a LIKE 'PROMO%'", {"a": 0})
        assert fn(("PROMO BRASS",)) is True
        assert fn(("ECONOMY",)) is False
        assert fn((None,)) is None

    def test_like_underscore(self):
        fn = compile_with("a LIKE 'b_t'", {"a": 0})
        assert fn(("bat",)) is True
        assert fn(("boat",)) is False

    def test_like_escapes_regex_chars(self):
        fn = compile_with("a LIKE 'a.c%'", {"a": 0})
        assert fn(("a.cd",)) is True
        assert fn(("abcd",)) is False  # '.' must not act as regex dot

    def test_not_like(self):
        fn = compile_with("a NOT LIKE 'x%'", {"a": 0})
        assert fn(("yz",)) is True

    def test_is_null(self):
        fn = compile_with("a IS NULL", {"a": 0})
        assert fn((None,)) is True
        assert fn((1,)) is False

    def test_is_not_null(self):
        fn = compile_with("a IS NOT NULL", {"a": 0})
        assert fn((1,)) is True

    def test_case(self):
        fn = compile_with(
            "CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' "
            "ELSE 'many' END", {"a": 0})
        assert fn((1,)) == "one"
        assert fn((2,)) == "two"
        assert fn((9,)) == "many"

    def test_case_no_else_yields_null(self):
        fn = compile_with("CASE WHEN a = 1 THEN 'one' END", {"a": 0})
        assert fn((5,)) is None

    def test_case_null_condition_skipped(self):
        fn = compile_with("CASE WHEN a > 1 THEN 'big' ELSE 'small' END",
                          {"a": 0})
        assert fn((None,)) == "small"


class TestResolution:
    def test_unresolved_column_raises(self):
        with pytest.raises(PlanningError):
            compile_with("missing + 1", {})

    def test_aggregate_outside_context_raises(self):
        with pytest.raises(PlanningError):
            compile_with("sum(a)", {"a": 0})

    def test_resolver_wins_over_structure(self):
        # If the resolver places the whole expression, no recursion.
        expr = parse_expression("sum(x)")
        fn = compile_expr(expr, lambda node: 2 if expr_key(node)
                          == expr_key(expr) else None)
        assert fn((0, 0, 42)) == 42

    def test_unknown_function_raises(self):
        with pytest.raises(PlanningError):
            compile_with("frobnicate(a)", {"a": 0})


class TestLikeRegexCache:
    def test_cache_reuses_patterns(self):
        first = like_to_regex("abc%")
        second = like_to_regex("abc%")
        assert first is second
