"""Tests for the virtual filesystem and simulated OS page cache."""

import pytest

from repro.errors import FileNotFoundInVFS, StorageError
from repro.simcost.clock import CostEvent
from repro.simcost.model import CostModel
from repro.storage.vfs import OSPageCache, VirtualFS


class TestNamespace:
    def test_create_and_read(self, vfs):
        vfs.create("a.txt", b"hello")
        assert vfs.exists("a.txt")
        assert vfs.read_bytes("a.txt") == b"hello"
        assert vfs.size("a.txt") == 5

    def test_missing_file_raises(self, vfs):
        with pytest.raises(FileNotFoundInVFS):
            vfs.read_bytes("nope")
        with pytest.raises(FileNotFoundInVFS):
            vfs.open("nope", CostModel())

    def test_delete(self, vfs):
        vfs.create("a", b"x")
        vfs.delete("a")
        assert not vfs.exists("a")
        with pytest.raises(FileNotFoundInVFS):
            vfs.delete("a")

    def test_listdir_prefix(self, vfs):
        vfs.create("dir/a", b"")
        vfs.create("dir/b", b"")
        vfs.create("other", b"")
        assert vfs.listdir("dir/") == ["dir/a", "dir/b"]

    def test_generation_bumps_on_mutation(self, vfs):
        vfs.create("f", b"1")
        g0 = vfs.generation("f")
        vfs.append_bytes("f", b"2")
        assert vfs.generation("f") > g0

    def test_rewrite_count_distinguishes_appends(self, vfs):
        vfs.create("f", b"1")
        r0 = vfs.rewrite_count("f")
        vfs.append_bytes("f", b"2")
        assert vfs.rewrite_count("f") == r0  # appends are not rewrites
        vfs.write_bytes("f", b"xyz")
        assert vfs.rewrite_count("f") == r0 + 1

    def test_import_export_roundtrip(self, vfs, tmp_path):
        local = tmp_path / "data.csv"
        local.write_bytes(b"1,2,3\n")
        path = vfs.import_local(str(local))
        assert path == "data.csv"
        out = tmp_path / "out.csv"
        vfs.export_local("data.csv", str(out))
        assert out.read_bytes() == b"1,2,3\n"


class TestCostedReads:
    def test_sequential_read_charges_no_seek(self, vfs, model):
        vfs.create("f", b"x" * 1000)
        handle = vfs.open("f", model)
        handle.read_at(0, 500)
        handle.read_at(500, 500)
        assert model.count(CostEvent.DISK_SEEK) == 0
        total = (model.count(CostEvent.DISK_READ_COLD)
                 + model.count(CostEvent.DISK_READ_WARM))
        assert total == 1000

    def test_random_read_charges_seek(self, vfs, model):
        vfs.create("f", b"x" * 1_000_000)
        handle = vfs.open("f", model)
        handle.read_at(0, 10)
        handle.read_at(900_000, 10)  # far cold jump: a real seek
        assert model.count(CostEvent.DISK_SEEK) == 1
        handle.read_at(500_000, 10)  # backward cold jump: also a seek
        assert model.count(CostEvent.DISK_SEEK) == 2

    def test_jump_onto_cached_data_is_not_a_seek(self, vfs, model):
        vfs.create("f", b"x" * 1_000_000)
        handle = vfs.open("f", model)
        handle.read_at(0, 10)
        handle.read_at(900_000, 10)       # cold: seek
        handle.read_at(0, 10)             # back onto resident block: free
        assert model.count(CostEvent.DISK_SEEK) == 1

    def test_small_forward_gap_reads_through(self, vfs, model):
        vfs.create("f", b"x" * 100_000)
        handle = vfs.open("f", model)
        handle.read_at(0, 10)
        handle.read_at(5_000, 10)  # small gap: streamed, not sought
        assert model.count(CostEvent.DISK_SEEK) == 0
        total = (model.count(CostEvent.DISK_READ_COLD)
                 + model.count(CostEvent.DISK_READ_WARM))
        assert total == 5_010  # gap bytes charged as read-through

    def test_read_past_eof_truncates(self, vfs, model):
        vfs.create("f", b"abc")
        handle = vfs.open("f", model)
        assert handle.read_at(1, 100) == b"bc"
        assert handle.read_at(50, 10) == b""

    def test_negative_offset_rejected(self, vfs, model):
        vfs.create("f", b"abc")
        with pytest.raises(StorageError):
            vfs.open("f", model).read_at(-1, 2)

    def test_first_read_cold_second_warm(self, vfs, model):
        vfs.create("f", b"x" * 100)
        handle = vfs.open("f", model)
        handle.read_at(0, 100)
        cold_first = model.count(CostEvent.DISK_READ_COLD)
        handle.read_at(0, 100)
        assert model.count(CostEvent.DISK_READ_COLD) == cold_first
        assert model.count(CostEvent.DISK_READ_WARM) == 100

    def test_os_cache_shared_across_handles_and_models(self, vfs):
        vfs.create("f", b"x" * 100)
        first = CostModel()
        vfs.open("f", first).read_at(0, 100)
        second = CostModel()
        vfs.open("f", second).read_at(0, 100)
        # Second engine on the same machine reads warm.
        assert second.count(CostEvent.DISK_READ_COLD) == 0
        assert second.count(CostEvent.DISK_READ_WARM) == 100

    def test_append_charges_write(self, vfs, model):
        vfs.create("f", b"")
        handle = vfs.open("f", model)
        handle.append(b"abcd")
        assert model.count(CostEvent.DISK_WRITE) == 4
        assert vfs.read_bytes("f") == b"abcd"

    def test_write_at_extends_file(self, vfs, model):
        vfs.create("f", b"ab")
        handle = vfs.open("f", model)
        handle.write_at(4, b"zz")
        assert vfs.size("f") == 6
        assert vfs.read_bytes("f") == b"ab\x00\x00zz"

    def test_read_sequential_tracks_position(self, vfs, model):
        vfs.create("f", b"abcdef")
        handle = vfs.open("f", model)
        assert handle.read_sequential(2) == b"ab"
        assert handle.read_sequential(2) == b"cd"
        assert handle.tell() == 4


class TestOSPageCache:
    def test_capacity_evicts_lru(self):
        cache = OSPageCache(capacity_bytes=2 * 64 * 1024)
        cache.touch("f", 0, 64 * 1024)            # block 0
        cache.touch("f", 64 * 1024, 64 * 1024)    # block 1
        cache.touch("f", 128 * 1024, 64 * 1024)   # block 2 -> evicts 0
        assert not cache.is_resident("f", 0)
        assert cache.is_resident("f", 64 * 1024)
        assert cache.is_resident("f", 128 * 1024)

    def test_touch_refreshes_lru(self):
        cache = OSPageCache(capacity_bytes=2 * 64 * 1024)
        cache.touch("f", 0, 1)
        cache.touch("f", 64 * 1024, 1)
        cache.touch("f", 0, 1)                    # refresh block 0
        cache.touch("f", 128 * 1024, 1)           # evicts block 1
        assert cache.is_resident("f", 0)
        assert not cache.is_resident("f", 64 * 1024)

    def test_warm_cold_split(self):
        cache = OSPageCache()
        warm, cold = cache.touch("f", 0, 100)
        assert (warm, cold) == (0, 100)
        warm, cold = cache.touch("f", 0, 100)
        assert (warm, cold) == (100, 0)

    def test_invalidate_path_only(self):
        cache = OSPageCache()
        cache.touch("a", 0, 10)
        cache.touch("b", 0, 10)
        cache.invalidate("a")
        assert not cache.is_resident("a", 0)
        assert cache.is_resident("b", 0)

    def test_zero_length_touch(self):
        cache = OSPageCache()
        assert cache.touch("f", 0, 0) == (0, 0)

    def test_invalid_block_size(self):
        with pytest.raises(StorageError):
            OSPageCache(block_size=0)

    def test_unbounded_cache_never_evicts(self):
        cache = OSPageCache()
        for i in range(100):
            cache.touch("f", i * 64 * 1024, 1)
        for i in range(100):
            assert cache.is_resident("f", i * 64 * 1024)

    def test_rewrite_invalidates_cache(self, vfs, model):
        vfs.create("f", b"x" * 100)
        vfs.open("f", model).read_at(0, 100)
        vfs.write_bytes("f", b"y" * 100)
        fresh = CostModel()
        vfs.open("f", fresh).read_at(0, 100)
        assert fresh.count(CostEvent.DISK_READ_COLD) == 100

    def test_append_keeps_cache_warm(self, vfs, model):
        vfs.create("f", b"x" * 100)
        vfs.open("f", model).read_at(0, 100)
        vfs.append_bytes("f", b"y" * 100)
        fresh = CostModel()
        vfs.open("f", fresh).read_at(0, 100)
        assert fresh.count(CostEvent.DISK_READ_COLD) == 0
