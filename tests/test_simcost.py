"""Tests for the virtual clock, cost profiles, and cost model."""

import pytest

from repro.simcost.clock import CostEvent, VirtualClock
from repro.simcost.model import CostModel
from repro.simcost.profiles import (
    ALL_PROFILES,
    CFITSIO_PROFILE,
    CSV_ENGINE_PROFILE,
    DBMS_X_PROFILE,
    MYSQL_PROFILE,
    POSTGRESQL_PROFILE,
    POSTGRES_RAW_PROFILE,
    CostProfile,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.count(CostEvent.TOKENIZE) == 0

    def test_charge_advances_time(self):
        clock = VirtualClock()
        clock.charge(CostEvent.TOKENIZE, 1000, 2e-9)
        assert clock.now() == pytest.approx(2e-6)
        assert clock.count(CostEvent.TOKENIZE) == 1000

    def test_charges_accumulate(self):
        clock = VirtualClock()
        clock.charge(CostEvent.DISK_READ_COLD, 100, 1e-9)
        clock.charge(CostEvent.DISK_READ_COLD, 200, 1e-9)
        assert clock.count(CostEvent.DISK_READ_COLD) == 300
        assert clock.now() == pytest.approx(300e-9)

    def test_negative_units_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.charge(CostEvent.TOKENIZE, -1, 1e-9)

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.5)

    def test_checkpoint_elapsed(self):
        clock = VirtualClock()
        clock.advance(1.5)
        mark = clock.checkpoint()
        clock.advance(2.5)
        assert clock.elapsed_since(mark) == pytest.approx(2.5)

    def test_snapshot_is_plain_dict(self):
        clock = VirtualClock()
        clock.charge(CostEvent.PREDICATE_EVAL, 5, 1e-9)
        snap = clock.snapshot()
        assert snap == {"predicate_eval": 5}
        snap["predicate_eval"] = 99  # mutating the copy is harmless
        assert clock.count(CostEvent.PREDICATE_EVAL) == 5

    def test_reset(self):
        clock = VirtualClock()
        clock.charge(CostEvent.TOKENIZE, 10, 1e-9)
        clock.reset()
        assert clock.now() == 0.0
        assert clock.count(CostEvent.TOKENIZE) == 0

    def test_monotonic_time(self):
        clock = VirtualClock()
        last = 0.0
        for units in (5, 0, 100, 3):
            clock.charge(CostEvent.TUPLE_FORM, units, 1e-9)
            assert clock.now() >= last
            last = clock.now()


class TestProfiles:
    def test_every_event_is_priced_on_every_profile(self):
        for profile in ALL_PROFILES.values():
            for event in CostEvent:
                assert profile.rate(event) >= 0.0

    def test_profiles_are_frozen(self):
        with pytest.raises(AttributeError):
            POSTGRESQL_PROFILE.tokenize = 1.0  # type: ignore[misc]

    def test_postgresraw_shares_postgres_executor_rates(self):
        # Same engine (§5): identical per-tuple machinery prices.
        assert (POSTGRES_RAW_PROFILE.tuple_overhead
                == POSTGRESQL_PROFILE.tuple_overhead)
        assert (POSTGRES_RAW_PROFILE.aggregate_step
                == POSTGRESQL_PROFILE.aggregate_step)

    def test_dbmsx_executor_faster_than_postgres(self):
        # Paper: "PostgreSQL is 53% slower than DBMS X" on queries.
        assert DBMS_X_PROFILE.tuple_overhead < POSTGRESQL_PROFILE.tuple_overhead
        assert DBMS_X_PROFILE.aggregate_step < POSTGRESQL_PROFILE.aggregate_step

    def test_mysql_slower_than_postgres(self):
        assert MYSQL_PROFILE.tuple_overhead > POSTGRESQL_PROFILE.tuple_overhead

    def test_csv_engine_is_the_slowest_per_tuple(self):
        assert (CSV_ENGINE_PROFILE.tuple_overhead
                >= MYSQL_PROFILE.tuple_overhead)

    def test_cfitsio_library_per_row_costs(self):
        # §5.3: the CFITSIO library's per-row path (buffer management,
        # byte swapping) is comparable to a DBMS executor's — the paper
        # measures ~1.6 us/row — so its rates are NOT near-zero.
        assert CFITSIO_PROFILE.tuple_overhead >= 500e-9
        assert CFITSIO_PROFILE.deserialize > POSTGRESQL_PROFILE.deserialize

    def test_conversion_cost_ordering(self):
        # ASCII->binary conversion dominates; strings are cheap (§6).
        profile = POSTGRES_RAW_PROFILE
        assert profile.convert_str < profile.convert_int
        assert profile.convert_int <= profile.convert_float
        assert profile.convert_float <= profile.convert_date

    def test_newline_scan_cheaper_than_tokenize(self):
        assert POSTGRES_RAW_PROFILE.newline_scan < POSTGRES_RAW_PROFILE.tokenize

    def test_warm_reads_cheaper_than_cold(self):
        assert (POSTGRES_RAW_PROFILE.disk_read_warm
                < POSTGRES_RAW_PROFILE.disk_read_cold)


class TestCostModel:
    def test_default_profile(self):
        model = CostModel()
        assert model.profile is POSTGRES_RAW_PROFILE

    def test_disk_read_warm_vs_cold(self):
        model = CostModel()
        model.disk_read(1000, warm=False)
        model.disk_read(1000, warm=True)
        assert model.count(CostEvent.DISK_READ_COLD) == 1000
        assert model.count(CostEvent.DISK_READ_WARM) == 1000

    def test_convert_routes_by_family(self):
        model = CostModel()
        model.convert("int", 2)
        model.convert("float", 3)
        model.convert("date", 4)
        model.convert("str", 5)
        model.convert("bool", 6)
        assert model.count(CostEvent.CONVERT_INT) == 8  # int + bool
        assert model.count(CostEvent.CONVERT_FLOAT) == 3
        assert model.count(CostEvent.CONVERT_DATE) == 4
        assert model.count(CostEvent.CONVERT_STR) == 5

    def test_unknown_family_raises(self):
        model = CostModel()
        with pytest.raises(KeyError):
            model.convert("uuid", 1)

    def test_custom_profile_prices(self):
        profile = CostProfile(name="custom", tokenize=1.0)
        model = CostModel(profile=profile)
        model.tokenize(3)
        assert model.now() == pytest.approx(3.0)

    def test_helpers_charge_expected_events(self):
        model = CostModel()
        model.disk_seek()
        model.disk_write(10)
        model.newline_scan(7)
        model.map_access(2)
        model.map_insert(3)
        model.cache_read(4)
        model.cache_write(5)
        model.predicate(6)
        model.aggregate(7)
        model.hash_probe(8)
        model.sort_compare(9)
        model.tuple_overhead(10)
        model.deserialize(11)
        model.serialize(12)
        model.stats_sample(13)
        model.tuple_form(14)
        model.query_overhead()
        expected = {
            CostEvent.DISK_SEEK: 1, CostEvent.DISK_WRITE: 10,
            CostEvent.NEWLINE_SCAN: 7, CostEvent.MAP_ACCESS: 2,
            CostEvent.MAP_INSERT: 3, CostEvent.CACHE_READ: 4,
            CostEvent.CACHE_WRITE: 5, CostEvent.PREDICATE_EVAL: 6,
            CostEvent.AGGREGATE_STEP: 7, CostEvent.HASH_PROBE: 8,
            CostEvent.SORT_COMPARE: 9, CostEvent.TUPLE_OVERHEAD: 10,
            CostEvent.DESERIALIZE: 11, CostEvent.SERIALIZE: 12,
            CostEvent.STATS_SAMPLE: 13, CostEvent.TUPLE_FORM: 14,
            CostEvent.QUERY_OVERHEAD: 1,
        }
        for event, units in expected.items():
            assert model.count(event) == units, event
