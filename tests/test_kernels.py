"""Compiled scan kernels: differential fuzz + cache lifecycle.

The kernel path (``repro.kernels``) is a per-query specialization of
the generic batch scan and must be *invisible* except in wall-clock
time and its own zero-priced counters. The contract under test:

* **On-vs-off parity** — identical result sequences, positional-map
  and binary-cache dumps, every non-``kernel_*`` counter and the
  virtual clock itself, with 1 and 4 scan workers, over seeded random
  schemas/data/workloads (CSV) and JSONL tables.
* **Bailouts are per block** — unsupported block states (string
  columns on CSV, not-yet-cached columns) fall back to the generic
  code for that block only; results never change.
* **Cache lifecycle** — first prepare compiles (``kernel: <sig>
  (compiled)`` in EXPLAIN), later prepares hit, a catalog stats-epoch
  bump invalidates and recompiles exactly once, and ``?`` re-binds
  never recompile.
"""

import random

import pytest

import repro
from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.formats.csvfmt import write_csv
from repro.formats.jsonl import write_jsonl

from tests.test_batch_differential import (
    cache_dump,
    pm_dump,
    random_query,
    random_schema,
    random_table,
)

WORKER_COUNTS = (1, 4)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def kernel_engine(schema, payload: bytes, workers: int, kernels: bool,
                  block_size: int = 16, **config_kwargs) -> PostgresRaw:
    vfs = VirtualFS()
    vfs.create("t.csv", payload)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=block_size,
                                 scan_workers=workers,
                                 scan_kernels=kernels, **config_kwargs),
        vfs=vfs)
    engine.register_csv("t", "t.csv", schema)
    return engine


def comparable_state(engine, table="t"):
    """Everything the parity contract covers — kernel_* counters are
    the kernel path's own observability and are excluded."""
    return {
        "pm": pm_dump(engine.positional_map_of(table)),
        "cache": cache_dump(engine.cache_of(table)),
        "counters": {k: v for k, v in engine.counters().items()
                     if not k.startswith("kernel_")},
        "clock": engine.clock.now(),
    }


def kernel_counters(engine):
    return {k: v for k, v in engine.counters().items()
            if k.startswith("kernel_")}


def explain_kernel_lines(session, sql):
    cursor = session.execute("EXPLAIN " + sql)
    return [row[0] for row in cursor.fetchall()
            if row[0].startswith("kernel:")]


# ---------------------------------------------------------------------------
# Differential fuzz: kernels on vs off must be invisible
# ---------------------------------------------------------------------------
class TestKernelDifferentialFuzz:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", range(6))
    def test_csv_random_workloads_match(self, seed, workers):
        rng = random.Random(72000 + seed)
        schema = random_schema(rng)
        payload = write_csv(random_table(rng, schema))
        block_size = rng.choice([3, 8, 17, 64])
        queries = [random_query(rng, schema) for _ in range(5)]

        on = kernel_engine(schema, payload, workers, True, block_size)
        off = kernel_engine(schema, payload, workers, False, block_size)
        s_on, s_off = repro.connect(on), repro.connect(off)
        for sql in queries:
            for _ in range(2):  # cold + warm execution of each shape
                rows_on = s_on.execute(sql).fetchall()
                rows_off = s_off.execute(sql).fetchall()
                assert rows_on == rows_off, f"seed={seed}: {sql!r}"
            assert comparable_state(on) == comparable_state(off), \
                f"seed={seed} diverged after {sql!r}"
        assert kernel_counters(off) == {}

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_jsonl_workloads_match(self, workers):
        rows = [{"a": i, "b": i % 23, "c": f"s{i % 7}", "d": i * 0.25}
                for i in range(400)]

        def build(kernels):
            vfs = VirtualFS()
            write_jsonl(rows, vfs, "t.jsonl")
            engine = PostgresRaw(
                config=PostgresRawConfig(row_block_size=32,
                                         scan_workers=workers,
                                         scan_kernels=kernels),
                vfs=vfs)
            engine.query(
                "CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR, "
                "d FLOAT) USING jsonl OPTIONS (path 't.jsonl')")
            return engine

        on, off = build(True), build(False)
        s_on, s_off = repro.connect(on), repro.connect(off)
        queries = [
            "SELECT a, d FROM t WHERE b < 7",       # cold: streaming
            "SELECT c FROM t WHERE a >= 150",       # bail: a not cached
            "SELECT a, b, c, d FROM t",             # no predicate
            "SELECT sum(d) FROM t WHERE b = 3",     # aggregate above scan
        ]
        for sql in queries:
            for _ in range(3):
                assert s_on.execute(sql).fetchall() == \
                    s_off.execute(sql).fetchall(), sql
            assert comparable_state(on) == comparable_state(off), sql

    def test_worker_counts_identical_with_kernels(self):
        """The kernel path preserves PR-4's worker-invariance contract:
        1 and 4 workers agree on everything, kernels on."""
        rng = random.Random(9151)
        schema = random_schema(rng)
        payload = write_csv(random_table(rng, schema))
        queries = [random_query(rng, schema) for _ in range(4)]
        engines = {w: kernel_engine(schema, payload, w, True, 8)
                   for w in WORKER_COUNTS}
        sessions = {w: repro.connect(engines[w]) for w in WORKER_COUNTS}
        for sql in queries:
            results = {w: sessions[w].execute(sql).fetchall()
                       for w in WORKER_COUNTS}
            assert results[4] == results[1], sql
            # Same blocks bail on both sides: kernel_* counters match.
            assert engines[4].counters() == engines[1].counters(), sql
            assert comparable_state(engines[4]) == \
                comparable_state(engines[1]), sql


# ---------------------------------------------------------------------------
# Bailouts: per-block fallback, never per query
# ---------------------------------------------------------------------------
class TestKernelBailouts:
    def test_uncached_where_column_bails_then_recovers(self):
        rows = [[str(i), str(i % 13), f"w{i % 5}"] for i in range(96)]
        schema = repro.Schema([("a", repro.INTEGER),
                               ("b", repro.INTEGER),
                               ("c", repro.varchar())])
        on = kernel_engine(schema, write_csv(rows), 1, True, 16)
        off = kernel_engine(schema, write_csv(rows), 1, False, 16)
        s_on, s_off = repro.connect(on), repro.connect(off)
        # Warm `a` only; then predicate on the uncached `b` must bail
        # per block on the first run and go fully fused on the second.
        for sql in ("SELECT a FROM t WHERE a < 40",
                    "SELECT a FROM t WHERE b = 3",
                    "SELECT a FROM t WHERE b = 3"):
            assert s_on.execute(sql).fetchall() == \
                s_off.execute(sql).fetchall(), sql
            assert comparable_state(on) == comparable_state(off), sql
        counters = kernel_counters(on)
        assert counters.get("kernel_bailouts", 0) > 0
        assert counters.get("kernel_hits", 0) > 0

    def test_string_column_output_stays_identical(self):
        rows = [[str(i), f"name_{i % 9}"] for i in range(64)]
        schema = repro.Schema([("a", repro.INTEGER),
                               ("s", repro.varchar())])
        on = kernel_engine(schema, write_csv(rows), 1, True, 16)
        off = kernel_engine(schema, write_csv(rows), 1, False, 16)
        s_on, s_off = repro.connect(on), repro.connect(off)
        sql = "SELECT s FROM t WHERE a >= 20"
        for _ in range(3):
            assert s_on.execute(sql).fetchall() == \
                s_off.execute(sql).fetchall()
            assert comparable_state(on) == comparable_state(off)

    def test_bailouts_cost_nothing(self):
        """kernel_* events are observability, not work: they never move
        the virtual clock (asserted indirectly by every parity test,
        directly here)."""
        rows = [[str(i), str(i % 7)] for i in range(48)]
        schema = repro.Schema([("a", repro.INTEGER),
                               ("b", repro.INTEGER)])
        engine = kernel_engine(schema, write_csv(rows), 1, True, 16)
        session = repro.connect(engine)
        for _ in range(3):
            session.execute("SELECT a FROM t WHERE b < 4").fetchall()
        assert kernel_counters(engine)  # events were recorded ...
        clock = engine.clock
        before = clock.now()
        engine.model.kernel_hit(5)
        engine.model.kernel_compile()
        engine.model.kernel_bailout()
        assert clock.now() == before  # ... at zero price


# ---------------------------------------------------------------------------
# Cache lifecycle: compiled -> hit -> epoch invalidation -> compiled
# ---------------------------------------------------------------------------
class TestKernelCacheLifecycle:
    @staticmethod
    def _fresh(kernels=True):
        rows = [[str(i), str(i % 11)] for i in range(80)]
        schema = repro.Schema([("a", repro.INTEGER),
                               ("b", repro.INTEGER)])
        engine = kernel_engine(schema, write_csv(rows), 1, kernels, 16)
        return engine, repro.connect(engine)

    def test_explain_reports_compile_then_hit(self):
        engine, session = self._fresh()
        sql = "SELECT a FROM t WHERE b < 5"
        lines = explain_kernel_lines(session, sql)
        assert len(lines) == 1 and "(compiled)" in lines[0]
        assert "csv:" in lines[0]
        # A distinct statement with the same value-free shape (literals
        # are excluded from the signature) hits the kernel cache.
        lines = explain_kernel_lines(session, "SELECT a FROM t WHERE b < 9")
        assert len(lines) == 1 and "(hit)" in lines[0]

    def test_epoch_bump_invalidates_and_recompiles_once(self):
        engine, session = self._fresh()
        statement = session.prepare("SELECT a FROM t WHERE b < ?")
        statement.execute([5]).fetchall()   # stats arrive: epoch moves
        statement.execute([5]).fetchall()   # replans once, then stable
        settled = engine.counters().get("kernel_compiles", 0)
        for _ in range(4):
            statement.execute([5]).fetchall()
        assert engine.counters().get("kernel_compiles", 0) == settled
        engine.catalog.bump_epoch()         # e.g. a rename / new rollup
        statement.execute([5]).fetchall()
        assert engine.counters().get("kernel_compiles", 0) == settled + 1
        assert session.kernels.invalidations >= 1

    def test_param_rebind_never_recompiles(self):
        engine, session = self._fresh()
        statement = session.prepare("SELECT a FROM t WHERE b < ?")
        expected = {}
        for bound in (3, 7, 3, 10):
            rows = statement.execute([bound]).fetchall()
            expected.setdefault(bound, rows)
            assert rows == expected[bound]
        # Distinct parameter values share one kernel: compile count is
        # whatever stats settling required, independent of re-binds.
        compiles = engine.counters().get("kernel_compiles", 0)
        statement.execute([999]).fetchall()
        assert engine.counters().get("kernel_compiles", 0) == compiles
        assert engine.counters().get("kernel_hits", 0) >= 5

    def test_disabled_config_reports_reason_and_stays_generic(self):
        engine, session = self._fresh(kernels=False)
        lines = explain_kernel_lines(session, "SELECT a FROM t")
        assert lines == ["kernel: none (scan_kernels disabled) [t]"]
        session.execute("SELECT a FROM t").fetchall()
        assert kernel_counters(engine) == {}

    def test_env_gate_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_KERNELS", "0")
        assert PostgresRawConfig().scan_kernels is False
        monkeypatch.setenv("REPRO_SCAN_KERNELS", "1")
        assert PostgresRawConfig().scan_kernels is True
