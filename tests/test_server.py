"""The network front end: protocol, server, tenants, metrics plane.

Covers the wire protocol in isolation (framing, value fidelity, error
serialization), the server end to end against an in-process oracle
(bit-identical rows, description, counters and elapsed), the
structured-error contract per error class, per-tenant quotas, typed
``SERVER_BUSY`` back-pressure, disconnect → abandoned-query cleanup,
the in-process ``Cursor.close()`` early-close satellite, and the HTTP
``/health`` / ``/metrics`` plane.
"""

import datetime
import io
import json
import socket
import struct
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

import repro
from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.api.exceptions import (
    DataError,
    InterfaceError,
    OperationalError,
    ProgrammingError,
)
from repro.errors import (
    CSVFormatError,
    ParseError,
    QueryTimeoutError,
    QuotaExceededError,
    ServerBusyError,
    annotate,
)
from repro.server import (
    QueryServer,
    TenantRegistry,
    WireSession,
    wire_connect,
)
from repro.server import protocol
from repro.simcost.clock import CostEvent
from repro.workloads.micro import generate_micro_csv

# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def micro_engine(rows=300, block=64, **config_kwargs):
    vfs = VirtualFS()
    schema = generate_micro_csv(vfs, "m.csv", rows=rows, nattrs=6, seed=7)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=block, **config_kwargs),
        vfs=vfs)
    engine.register_csv("m", "m.csv", schema)
    return engine


DIRTY_CSV = (b"1,alice,30\n"
             b"2,bob,notanint\n"
             b"3,carol,41\n"
             b"corrupted line\n"
             b"5,eve,29\n")

DIRTY_DDL = ("CREATE TABLE t (id INTEGER, name TEXT, age INTEGER) "
             "USING csv OPTIONS (path 'dirty.csv')")


def dirty_engine():
    vfs = VirtualFS()
    vfs.create("dirty.csv", DIRTY_CSV)
    return PostgresRaw(config=PostgresRawConfig(), vfs=vfs)


def big_engine(rows=5000):
    vfs = VirtualFS()
    vfs.create("big.csv", b"".join(b"%d,%d\n" % (i, i * 3)
                                   for i in range(rows)))
    engine = PostgresRaw(config=PostgresRawConfig(), vfs=vfs)
    engine.query("CREATE TABLE big (id INTEGER, v INTEGER) "
                 "USING csv OPTIONS (path 'big.csv')")
    return engine


@contextmanager
def serve(engine, **kwargs):
    server = QueryServer(engine, **kwargs)
    server.start_in_background()
    try:
        yield server
    finally:
        server.stop()


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def http_get(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return response.status, response.read().decode()


# ---------------------------------------------------------------------------
# Protocol layer in isolation
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip_preserves_dates(self):
        message = {"id": 1, "op": "x",
                   "rows": [[1, datetime.date(1998, 12, 1), "a"],
                            [2, datetime.date(2026, 8, 8), None]]}
        stream = io.BytesIO()
        protocol.write_frame(stream, message)
        stream.seek(0)
        decoded = protocol.read_frame(stream)
        assert decoded == message
        assert isinstance(decoded["rows"][0][1], datetime.date)
        # Clean EOF at a frame boundary is None, not an error.
        assert protocol.read_frame(stream) is None

    def test_oversized_announced_frame_rejected(self):
        stream = io.BytesIO(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(stream)

    def test_truncated_and_garbage_frames_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(io.BytesIO(b"\x00\x00"))  # short header
        with pytest.raises(protocol.ProtocolError):
            protocol.read_frame(
                io.BytesIO(struct.pack(">I", 10) + b"short"))
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]")  # must be an object

    @pytest.mark.parametrize("exc, dbapi_name, code", [
        (ParseError("bad sql"), "ProgrammingError", "SQL_PARSE"),
        (annotate(CSVFormatError("short row"), path="d.csv",
                  row_number=3, table="t", byte_offset=17),
         "DataError", "CSV_FORMAT"),
        (annotate(QueryTimeoutError("deadline"), timeout=1e-6),
         "OperationalError", "QUERY_TIMEOUT"),
        (annotate(ServerBusyError("full"), in_flight=1, queued=0,
                  max_in_flight=1, max_queued=0),
         "OperationalError", "SERVER_BUSY"),
        (annotate(QuotaExceededError("spent"), tenant="alpha",
                  quota=0.5, spent=0.7),
         "OperationalError", "QUOTA_EXCEEDED"),
    ])
    def test_error_roundtrip_per_class(self, exc, dbapi_name, code):
        wire = protocol.describe_error(exc)
        assert wire["dbapi"] == dbapi_name
        assert wire["code"] == code
        # The wire object is plain JSON all the way down.
        json.dumps(wire)
        restored = protocol.restore_error(wire)
        assert type(restored).__name__ == dbapi_name
        assert restored.code == code
        assert restored.context == (getattr(exc, "context", None) or {})
        assert str(exc) in str(restored)

    def test_restore_unknown_class_falls_back(self):
        restored = protocol.restore_error(
            {"dbapi": "FutureFancyError", "code": "FANCY",
             "message": "from a newer server"})
        assert type(restored).__name__ == "OperationalError"
        assert restored.code == "FANCY"

    def test_counters_travel_as_value_strings(self):
        counters = {"tokenize": 12, "cache_read": 3.0}
        encoded = protocol.encode_counters(counters)
        assert encoded == counters
        # Stray enum keys are normalized, never leaked to the wire.
        assert protocol.encode_counters(
            {CostEvent.CACHE_READ: 2}) == {"cache_read": 2}
        assert protocol.decode_counters(encoded) == counters


# ---------------------------------------------------------------------------
# Wire vs in-process: the parity contract
# ---------------------------------------------------------------------------
SQL = "SELECT a1, a2, a4 FROM m WHERE a1 > ? ORDER BY a1"


class TestWireParity:
    def test_rows_description_counters_elapsed_match(self):
        oracle = repro.connect(engine=micro_engine())
        cur = oracle.execute(SQL, (25,))
        expected_rows = cur.fetchall()
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                wire_cur = session.execute(SQL, (25,))
                rows = wire_cur.fetchall()
                assert rows == expected_rows
                assert wire_cur.description == cur.description
                assert wire_cur.counters() == cur.counters()
                assert wire_cur.elapsed() == cur.elapsed()
                assert wire_cur.rowcount == cur.rowcount
                assert wire_cur.column_index("a4") == cur.column_index("a4")
                assert session.counters() == oracle.counters()
                assert session.elapsed() == oracle.elapsed()

    def test_query_result_parity(self):
        sql = "SELECT a3, count(*) FROM m GROUP BY a3 ORDER BY a3"
        expected = repro.connect(engine=micro_engine()).query(sql)
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                got = session.query(sql)
        assert got.rows == expected.rows
        assert got.columns == expected.columns
        assert got.counters == expected.counters
        assert got.elapsed == expected.elapsed
        assert got.plan == expected.plan
        assert got.rows_materialized == expected.rows_materialized

    def test_ddl_and_date_values_over_wire(self):
        csv = b"1,1998-12-01\n2,2026-08-08\n"
        ddl = ("CREATE TABLE ev (id INTEGER, d DATE) "
               "USING csv OPTIONS (path 'ev.csv')")
        sql = "SELECT id, d FROM ev WHERE d > DATE '2000-01-01'"

        vfs = VirtualFS()
        vfs.create("ev.csv", csv)
        oracle = repro.connect(vfs=vfs, config=PostgresRawConfig())
        oracle.execute(ddl)
        expected = oracle.execute(sql).fetchall()

        vfs2 = VirtualFS()
        vfs2.create("ev.csv", csv)
        engine = PostgresRaw(config=PostgresRawConfig(), vfs=vfs2)
        with serve(engine) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                session.execute(ddl).fetchall()
                rows = session.execute(sql).fetchall()
        assert rows == expected
        assert rows == [(2, datetime.date(2026, 8, 8))]
        assert isinstance(rows[0][1], datetime.date)

    def test_prepared_statements_over_wire(self):
        oracle = repro.connect(engine=micro_engine())
        stmt = oracle.prepare(SQL)
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                prepared = session.prepare(SQL)
                assert prepared.param_count == stmt.param_count == 1
                assert prepared.is_explain is False
                for threshold in (10, 200, 999):
                    assert (prepared.execute((threshold,)).fetchall()
                            == stmt.execute((threshold,)).fetchall())
                # Parameter arity errors stay the same class over the
                # wire as in-process.
                with pytest.raises(ProgrammingError) as oracle_err:
                    stmt.execute(())
                with pytest.raises(ProgrammingError) as wire_err:
                    prepared.execute(())
                assert wire_err.value.code == oracle_err.value.code
                prepared.close()
                prepared.close()  # idempotent

    def test_explain_over_wire(self):
        explain = "EXPLAIN " + SQL.replace("?", "50")
        expected = repro.connect(engine=micro_engine()).query(explain)
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                prepared = session.prepare(explain)
                assert prepared.is_explain is True
                assert session.query(explain).rows == expected.rows

    def test_fetch_variants_and_iteration(self):
        oracle_rows = repro.connect(
            engine=micro_engine()).execute(SQL, (0,)).fetchall()
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                cur = session.execute(SQL, (0,))
                first = cur.fetchone()
                some = cur.fetchmany(7)
                rest = cur.fetchall()
                assert [first] + some + rest == oracle_rows
                assert cur.fetchone() is None
                assert cur.fetchmany(10) == []
                # Iteration drains a fresh execute.
                cur.execute(SQL, (0,))
                assert list(cur) == oracle_rows
                # fetchmany(0) is a no-op, not a drain.
                cur.execute(SQL, (0,))
                assert cur.fetchmany(0) == []
                assert cur.fetchall() == oracle_rows

    def test_executemany_totals_rowcount(self):
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                cur = session.cursor()
                cur.executemany("SELECT a1 FROM m WHERE a1 > ?",
                                [(290,), (295,), (9999,)])
                oracle = repro.connect(engine=micro_engine()).cursor()
                oracle.executemany("SELECT a1 FROM m WHERE a1 > ?",
                                   [(290,), (295,), (9999,)])
                assert cur.rowcount == oracle.rowcount

    def test_streaming_bound_observable_over_wire(self):
        with serve(micro_engine(rows=600, block=64)) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                cur = session.execute("SELECT a1 FROM m")
                for _ in range(5):
                    cur.fetchmany(10)
                # One block past the fetch, same bound as in-process:
                # never the whole 600-row result.
                assert 0 < cur.peak_buffered_rows <= 2 * 64
                cur.close()


# ---------------------------------------------------------------------------
# Structured errors over the wire, per class
# ---------------------------------------------------------------------------
class TestWireErrors:
    def test_parse_error(self):
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                with pytest.raises(ProgrammingError) as err:
                    session.execute("SELEC a1 FRUM m")
                assert err.value.code in ("SQL_PARSE", "SQL_LEX")

    def test_catalog_error_unknown_table(self):
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                with pytest.raises(ProgrammingError) as err:
                    session.execute("SELECT x FROM nonexistent")
                assert err.value.code == "CATALOG"

    def test_csv_format_error_carries_context(self):
        with serve(dirty_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                session.execute(DIRTY_DDL).fetchall()
                cur = session.execute("SELECT id, age FROM t WHERE age > 0")
                with pytest.raises(DataError) as err:
                    cur.fetchall()
                assert err.value.code == "CSV_FORMAT"
                assert err.value.context.get("table") == "t"
                assert err.value.context.get("path") == "dirty.csv"
                assert err.value.context.get("row_number") == 3

    def test_query_timeout_carries_context(self):
        with serve(big_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                cur = session.execute("SELECT id, v FROM big WHERE v > 9",
                                      timeout=1e-6)
                with pytest.raises(OperationalError) as err:
                    cur.fetchall()
                assert err.value.code == "QUERY_TIMEOUT"
                assert err.value.context.get("timeout") == 1e-6
                # The session survives; a generous timeout completes.
                cur.execute("SELECT count(*) FROM big", timeout=1e9)
                assert cur.fetchall() == [(5000,)]

    def test_server_default_timeout_applies_and_is_overridable(self):
        with serve(big_engine(), default_timeout=1e-6) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                cur = session.execute("SELECT id FROM big")
                with pytest.raises(OperationalError) as err:
                    cur.fetchall()
                assert err.value.code == "QUERY_TIMEOUT"
                cur.execute("SELECT count(*) FROM big", timeout=1e9)
                assert cur.fetchall() == [(5000,)]

    def test_unknown_op_and_unknown_cursor(self):
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                with pytest.raises(InterfaceError):
                    session._request("frobnicate")
                with pytest.raises(InterfaceError):
                    session._request("fetch", cursor=999, n=1)

    def test_hello_must_come_first_and_only_once(self):
        with serve(micro_engine()) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                with pytest.raises(InterfaceError):
                    session._request("hello", tenant="again")


# ---------------------------------------------------------------------------
# Tenants and quotas
# ---------------------------------------------------------------------------
class TestTenants:
    def test_handshake_reports_tenant_and_engine(self):
        registry = TenantRegistry()
        registry.declare("alpha", quota=100.0)
        with serve(micro_engine(), tenants=registry) as server:
            with wire_connect("127.0.0.1", server.port,
                              tenant="alpha") as session:
                assert session.tenant == "alpha"
                assert session.tenant_quota == 100.0
                assert session.protocol_version == protocol.PROTOCOL_VERSION
                assert session.engine_name == server.engine.name
            with wire_connect("127.0.0.1", server.port) as session:
                assert session.tenant == "default"
                assert session.tenant_quota is None

    def test_quota_exceeded_is_admission_time_and_isolated(self):
        registry = TenantRegistry()
        registry.declare("alpha", quota=1e-9)  # one query, then cut off
        registry.declare("beta")
        with serve(micro_engine(), tenants=registry) as server:
            alpha = wire_connect("127.0.0.1", server.port, tenant="alpha")
            beta = wire_connect("127.0.0.1", server.port, tenant="beta")
            # First query is admitted (nothing spent yet) and runs to
            # completion even though it blows way past the quota.
            rows = alpha.execute(SQL, (0,)).fetchall()
            assert rows
            info = alpha.tenant_info()
            assert info["spent_seconds"] > 1e-9
            assert info["remaining"] == 0.0
            # Admission now refuses alpha before any engine work...
            with pytest.raises(OperationalError) as err:
                alpha.execute(SQL, (0,))
            assert err.value.code == "QUOTA_EXCEEDED"
            assert err.value.context.get("tenant") == "alpha"
            assert err.value.context.get("quota") == 1e-9
            # ...while beta is untouched.
            assert beta.execute(SQL, (0,)).fetchall() == rows
            assert server.stats["rejected_quota"] == 1
            assert registry.get("alpha").rejected == 1
            # A billing-cycle reset re-admits the tenant.
            registry.get("alpha").reset(quota=1e9)
            assert alpha.execute(SQL, (0,)).fetchall() == rows
            alpha.close()
            beta.close()

    def test_quota_spend_rolls_up_all_tenant_connections(self):
        registry = TenantRegistry()
        registry.declare("team", quota=1e9)
        with serve(micro_engine(), tenants=registry) as server:
            with wire_connect("127.0.0.1", server.port,
                              tenant="team") as one:
                with wire_connect("127.0.0.1", server.port,
                                  tenant="team") as two:
                    one.execute(SQL, (0,)).fetchall()
                    spent_after_one = one.tenant_info()["spent_seconds"]
                    two.execute(SQL, (100,)).fetchall()
                    spent_after_two = two.tenant_info()["spent_seconds"]
            assert spent_after_one > 0
            assert spent_after_two > spent_after_one
            tenant = registry.get("team")
            assert tenant.spent_seconds == spent_after_two
            assert tenant.counters.get("tokenize", 0) > 0

    def test_strict_registry_refuses_unknown_tenants(self):
        registry = TenantRegistry(strict=True)
        registry.declare("alpha")
        with serve(micro_engine(), tenants=registry) as server:
            with pytest.raises(OperationalError) as err:
                wire_connect("127.0.0.1", server.port, tenant="ghost")
            assert err.value.code == "QUOTA_EXCEEDED"
            assert err.value.context.get("tenant") == "ghost"
            with wire_connect("127.0.0.1", server.port,
                              tenant="alpha") as session:
                assert session.tenant == "alpha"


# ---------------------------------------------------------------------------
# Back-pressure: typed SERVER_BUSY
# ---------------------------------------------------------------------------
class TestServerBusy:
    def test_saturated_gate_rejects_with_context(self):
        engine = micro_engine(rows=600)
        with serve(engine, max_in_flight=1, accept_queue=0) as server:
            first = wire_connect("127.0.0.1", server.port)
            second = wire_connect("127.0.0.1", server.port)
            streaming = first.execute("SELECT a1 FROM m")
            streaming.fetchmany(10)  # admitted and live
            with pytest.raises(OperationalError) as err:
                second.execute("SELECT a2 FROM m")
            assert err.value.code == "SERVER_BUSY"
            assert err.value.context.get("max_in_flight") == 1
            assert err.value.context.get("max_queued") == 0
            assert server.stats["rejected_busy"] == 1
            # Fetches are never rejected: they drain work and free the
            # slot — after which the rejected client gets through.
            streaming.fetchall()
            assert second.execute("SELECT a2 FROM m").fetchmany(3)
            first.close()
            second.close()

    def test_in_process_default_stays_unbounded(self):
        # The bounded accept queue is a server-front-end policy; plain
        # in-process sessions keep blocking-admission semantics.
        engine = micro_engine()
        assert engine.shared_scheduler().max_queued is None


# ---------------------------------------------------------------------------
# Disconnects and abandoned queries
# ---------------------------------------------------------------------------
class TestDisconnect:
    def test_hard_disconnect_releases_slot_and_counts_abandon(self):
        engine = micro_engine(rows=600)
        with serve(engine, max_in_flight=1) as server:
            session = wire_connect("127.0.0.1", server.port)
            cur = session.execute("SELECT a1 FROM m")
            cur.fetchmany(5)
            session.close_socket()  # client crash, no goodbye
            assert wait_until(lambda: server.scheduler.in_flight == 0)
            assert wait_until(lambda: server.connections_active == 0)
            assert server.scheduler.abandoned == 1
            assert engine.clock.counters.get(
                CostEvent.QUERIES_ABANDONED) == 1
            # The freed slot admits the next client immediately.
            with wire_connect("127.0.0.1", server.port) as fresh:
                assert fresh.execute(SQL, (0,)).fetchall()

    def test_clean_close_mid_stream_abandons(self):
        engine = micro_engine(rows=600)
        with serve(engine) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                cur = session.execute("SELECT a1 FROM m")
                cur.fetchmany(5)
                cur.close()  # explicit early close, same contract
            assert wait_until(lambda: server.scheduler.abandoned == 1)
            assert server.scheduler.in_flight == 0

    def test_finished_cursor_close_is_not_an_abandon(self):
        engine = micro_engine()
        with serve(engine) as server:
            with wire_connect("127.0.0.1", server.port) as session:
                cur = session.execute(SQL, (0,))
                cur.fetchall()
                cur.close()
            assert wait_until(lambda: server.connections_active == 0)
            assert server.scheduler.abandoned == 0
            assert engine.clock.counters.get(
                CostEvent.QUERIES_ABANDONED) is None


# ---------------------------------------------------------------------------
# Satellite: in-process Cursor.close() early-close contract
# ---------------------------------------------------------------------------
class TestInProcessEarlyClose:
    def test_close_releases_slot_and_counts_zero_priced(self):
        engine = micro_engine(rows=600)
        session = repro.connect(engine=engine, max_in_flight=1)
        cur = session.cursor().execute("SELECT a1 FROM m")
        cur.fetchmany(5)
        scheduler = engine.shared_scheduler()
        assert scheduler.in_flight == 1
        clock_before = engine.clock.now()
        counters_before = dict(session.counters())
        cur.close()
        # Slot released, abandon counted...
        assert scheduler.in_flight == 0
        assert scheduler.abandoned == 1
        assert engine.clock.counters.get(CostEvent.QUERIES_ABANDONED) == 1
        # ...zero-priced: no virtual time elapsed, and the session's
        # priced ledger is untouched (parity assertions keep holding).
        assert engine.clock.now() == clock_before
        assert session.counters() == counters_before
        assert "queries_abandoned" not in session.counters()
        # The freed slot admits the next query at once.
        assert session.cursor().execute(SQL, (0,)).fetchmany(3)

    def test_close_after_drain_is_free(self):
        engine = micro_engine()
        session = repro.connect(engine=engine)
        cur = session.cursor().execute(SQL, (0,))
        cur.fetchall()
        cur.close()
        assert engine.shared_scheduler().abandoned == 0
        assert engine.clock.counters.get(
            CostEvent.QUERIES_ABANDONED) is None


# ---------------------------------------------------------------------------
# The metrics plane
# ---------------------------------------------------------------------------
class TestMetricsPlane:
    def test_health(self):
        with serve(micro_engine()) as server:
            status, body = http_get(server.metrics_port, "/health")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["engine"] == server.engine.name
            assert health["in_flight"] == 0

    def test_metrics_exposition(self):
        registry = TenantRegistry()
        registry.declare("alpha", quota=250.0)
        with serve(micro_engine(), tenants=registry) as server:
            with wire_connect("127.0.0.1", server.port,
                              tenant="alpha") as session:
                session.execute(SQL, (0,)).fetchall()
                status, body = http_get(server.metrics_port, "/metrics")
        assert status == 200
        lines = dict(
            line.rsplit(" ", 1) for line in body.splitlines()
            if line and not line.startswith("#"))
        assert float(lines['repro_engine_events_total'
                           '{event="tokenize"}']) > 0
        # Every CostEvent is exposed, including never-fired ones.
        assert lines['repro_engine_events_total'
                     '{event="queries_abandoned"}'] == "0"
        assert float(lines["repro_engine_virtual_seconds"]) > 0
        assert lines["repro_server_queries_total"] == "1"
        assert lines["repro_server_connections_total"] == "1"
        assert lines['repro_server_rejected_total{reason="busy"}'] == "0"
        assert lines['repro_tenant_quota_virtual_seconds'
                     '{tenant="alpha"}'] == "250.0"
        assert float(lines['repro_tenant_spent_virtual_seconds'
                           '{tenant="alpha"}']) > 0
        assert lines["repro_scheduler_max_in_flight"] == "4"
        assert lines["repro_scheduler_accept_queue_limit"] == "16"

    def test_metrics_404_and_405(self):
        with serve(micro_engine()) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                http_get(server.metrics_port, "/nope")
            assert err.value.code == 404
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.metrics_port}/metrics",
                data=b"x", method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 405


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_graceful_stop_disconnects_clients(self):
        server = QueryServer(micro_engine()).start_in_background()
        session = wire_connect("127.0.0.1", server.port)
        assert session.execute(SQL, (0,)).fetchmany(3)
        server.stop()
        server.stop()  # idempotent
        with pytest.raises(InterfaceError):
            session.execute(SQL, (0,))
        # The port is released: connecting again is refused.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port), timeout=1)

    def test_stop_releases_sessions_of_connected_clients(self):
        engine = micro_engine(rows=600)
        server = QueryServer(engine, max_in_flight=1).start_in_background()
        session = wire_connect("127.0.0.1", server.port)
        cur = session.execute("SELECT a1 FROM m")
        cur.fetchmany(5)
        server.stop()
        # Drain released the abandoned stream's slot on the way out.
        assert server.scheduler.in_flight == 0
        assert server.scheduler.abandoned == 1

    def test_double_start_rejected(self):
        with serve(micro_engine()) as server:
            with pytest.raises(InterfaceError):
                server.start_in_background()

    def test_wire_session_api_misuse(self):
        with serve(micro_engine()) as server:
            session = wire_connect("127.0.0.1", server.port)
            cur = session.cursor()
            with pytest.raises(InterfaceError):
                cur.fetchall()  # nothing executed yet
            with pytest.raises(InterfaceError):
                cur.execute(12345)  # not SQL, not a statement
            cur.close()
            with pytest.raises(InterfaceError):
                cur.execute(SQL, (0,))  # closed cursor
            session.close()
            with pytest.raises(InterfaceError):
                session.cursor()  # closed session
            assert isinstance(session, WireSession)
