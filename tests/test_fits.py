"""Tests for the FITS binary-table format, the in-situ FITS scan, and
the CFITSIO comparator (§5.3)."""

import random
import struct

import pytest

from repro import CFitsioProgram, PostgresRaw, PostgresRawConfig, VirtualFS
from repro.errors import FITSFormatError
from repro.formats.fits import (
    BLOCK,
    FitsColumn,
    parse_fits,
    parse_fits_from_vfs,
    write_bintable,
)
from repro.simcost.clock import CostEvent


def sample_table(nrows=100, seed=0):
    rng = random.Random(seed)
    names = ["obj_id", "ra", "dec", "mag", "label"]
    tforms = ["K", "D", "D", "E", "8A"]
    rows = [
        (i, rng.uniform(0, 360), rng.uniform(-90, 90),
         rng.uniform(10, 25), f"obj{i:04d}")
        for i in range(nrows)
    ]
    return names, tforms, rows


def fits_vfs(nrows=100, seed=0):
    names, tforms, rows = sample_table(nrows, seed)
    vfs = VirtualFS()
    vfs.create("sky.fits", write_bintable(names, tforms, rows))
    return vfs, rows


class TestFormat:
    def test_file_is_block_aligned(self):
        names, tforms, rows = sample_table(10)
        data = write_bintable(names, tforms, rows)
        assert len(data) % BLOCK == 0

    def test_roundtrip_geometry(self):
        names, tforms, rows = sample_table(50)
        info = parse_fits(write_bintable(names, tforms, rows))
        assert info.nrows == 50
        assert [c.name for c in info.columns] == names
        assert info.row_bytes == 8 + 8 + 8 + 4 + 8

    def test_roundtrip_values(self):
        names, tforms, rows = sample_table(20)
        data = write_bintable(names, tforms, rows)
        info = parse_fits(data)
        for i, row in enumerate(rows):
            start = info.data_offset + i * info.row_bytes
            raw = data[start:start + info.row_bytes]
            decoded = tuple(c.decode(raw) for c in info.columns)
            assert decoded[0] == row[0]
            assert decoded[1] == pytest.approx(row[1])
            assert decoded[3] == pytest.approx(row[3], rel=1e-6)  # float32
            assert decoded[4] == row[4]

    def test_schema_derived_from_header(self):
        names, tforms, rows = sample_table(5)
        info = parse_fits(write_bintable(names, tforms, rows))
        schema = info.schema
        assert schema.names == names
        assert schema.column("obj_id").dtype.family == "int"
        assert schema.column("ra").dtype.family == "float"
        assert schema.column("label").dtype.family == "str"

    def test_int32_column(self):
        info = parse_fits(write_bintable(["v"], ["J"], [(123,)]))
        raw = bytes(info.columns[0].encode(123))
        assert struct.unpack(">i", raw)[0] == 123

    def test_string_column_padded_and_stripped(self):
        column = FitsColumn("s", "A", 6, 0)
        assert column.encode("ab") == b"ab    "
        assert column.decode(b"ab    ") == "ab"

    def test_bad_tform_rejected(self):
        with pytest.raises(FITSFormatError):
            write_bintable(["x"], ["Q"], [(1,)])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(FITSFormatError):
            write_bintable(["x", "y"], ["J", "J"], [(1,)])

    def test_not_fits_rejected(self):
        with pytest.raises(FITSFormatError):
            parse_fits(b"\x00" * BLOCK * 2)

    def test_truncated_header_rejected(self):
        with pytest.raises(FITSFormatError):
            parse_fits(b"SIMPLE  =                    T")


class TestRawFitsScan:
    def engine(self, nrows=200, **config_kwargs):
        vfs, rows = fits_vfs(nrows)
        config = PostgresRawConfig(row_block_size=64, **config_kwargs)
        db = PostgresRaw(config=config, vfs=vfs)
        db.register_fits("sky", "sky.fits")
        return db, rows

    def test_projection_matches_written_rows(self):
        db, rows = self.engine(100)
        result = db.query("SELECT obj_id, label FROM sky")
        assert result.rows == [(r[0], r[4]) for r in rows]

    def test_aggregates(self):
        db, rows = self.engine(150)
        result = db.query("SELECT min(dec), max(dec), avg(dec) FROM sky")
        decs = [r[2] for r in rows]
        assert result.rows[0][0] == pytest.approx(min(decs))
        assert result.rows[0][1] == pytest.approx(max(decs))
        assert result.rows[0][2] == pytest.approx(sum(decs) / len(decs))

    def test_predicate(self):
        db, rows = self.engine(100)
        result = db.query("SELECT obj_id FROM sky WHERE ra < 180.0")
        expected = [(r[0],) for r in rows if r[1] < 180.0]
        assert result.rows == expected

    def test_no_tokenize_cost_for_binary(self):
        db, _ = self.engine(50)
        db.query("SELECT ra FROM sky")
        assert db.model.count(CostEvent.TOKENIZE) == 0
        assert db.model.count(CostEvent.CONVERT_FLOAT) == 0
        assert db.model.count(CostEvent.DESERIALIZE) > 0

    def test_cache_eliminates_io(self):
        db, _ = self.engine(100)
        db.query("SELECT mag FROM sky")
        io_before = (db.model.count(CostEvent.DISK_READ_COLD)
                     + db.model.count(CostEvent.DISK_READ_WARM))
        db.query("SELECT mag FROM sky")
        io_after = (db.model.count(CostEvent.DISK_READ_COLD)
                    + db.model.count(CostEvent.DISK_READ_WARM))
        assert io_after == io_before

    def test_cache_disabled_rereads(self):
        db, _ = self.engine(100, enable_cache=False)
        db.query("SELECT mag FROM sky")
        io_before = (db.model.count(CostEvent.DISK_READ_COLD)
                     + db.model.count(CostEvent.DISK_READ_WARM))
        db.query("SELECT mag FROM sky")
        io_after = (db.model.count(CostEvent.DISK_READ_COLD)
                    + db.model.count(CostEvent.DISK_READ_WARM))
        assert io_after > io_before

    def test_stats_collected(self):
        db, _ = self.engine(100)
        db.query("SELECT mag FROM sky")
        stats = db.catalog.get("sky").stats
        assert stats is not None and stats.has_column("mag")

    def test_schema_comes_from_file(self):
        db, _ = self.engine(10)
        info = db.catalog.get("sky")
        assert info.schema.names == ["obj_id", "ra", "dec", "mag", "label"]


class TestCFitsioComparator:
    def test_aggregates_match_sql_engine(self):
        vfs, rows = fits_vfs(120)
        program = CFitsioProgram(vfs, "sky.fits")
        db = PostgresRaw(vfs=vfs)
        db.register_fits("sky", "sky.fits")
        for func in ("min", "max", "avg"):
            answer = program.aggregate(func, "mag")
            sql = db.query(f"SELECT {func}(mag) FROM sky").scalar()
            assert answer.value == pytest.approx(sql)

    def test_constant_time_per_query(self):
        # "the CFITSIO approach leads to nearly constant query times
        # since the entire file must be scanned for every query"
        vfs, _ = fits_vfs(200)
        program = CFitsioProgram(vfs, "sky.fits")
        first = program.aggregate("avg", "mag").elapsed     # cold
        second = program.aggregate("avg", "mag").elapsed    # fs-cache warm
        third = program.aggregate("min", "dec").elapsed
        assert second <= first
        assert third == pytest.approx(second, rel=0.2)

    def test_unsupported_mode_rejected(self):
        vfs, _ = fits_vfs(10)
        program = CFitsioProgram(vfs, "sky.fits")
        with pytest.raises(Exception):
            program.aggregate("median", "mag")
