"""Tests for the SQL lexer and parser."""

import datetime

import pytest

from repro.errors import LexerError, ParseError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Exists,
    FuncCall,
    InList,
    IntervalLiteral,
    IsNull,
    LikeExpr,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse, parse_expression


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.value == "select" for t in tokens[:-1])
        assert all(t.type == TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserved(self):
        tokens = tokenize("foo Bar_9")
        assert [t.value for t in tokens[:-1]] == ["foo", "Bar_9"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "1e3", "2.5e-2"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'abc")

    def test_operators(self):
        tokens = tokenize("= <> != <= >= < > + - * /")
        values = [t.value for t in tokens[:-1]]
        assert values == ["=", "<>", "<>", "<=", ">=", "<", ">",
                          "+", "-", "*", "/"]

    def test_comments_skipped(self):
        tokens = tokenize("select -- a comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["select", "1"]

    def test_unexpected_char(self):
        with pytest.raises(LexerError):
            tokenize("select @")

    def test_eof_token(self):
        assert tokenize("")[0].type == TokenType.EOF

    def test_punct(self):
        tokens = tokenize("(a, b);")
        assert [t.value for t in tokens[:-1]] == ["(", "a", ",", "b", ")",
                                                  ";"]


class TestParseExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == BinaryOp("+", Literal(1),
                                BinaryOp("*", Literal(2), Literal(3)))

    def test_parens_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr == BinaryOp("*", BinaryOp("+", Literal(1), Literal(2)),
                                Literal(3))

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_unary_minus(self):
        assert parse_expression("-5") == UnaryOp("-", Literal(5))

    def test_comparison(self):
        expr = parse_expression("price <= 100")
        assert expr == BinaryOp("<=", ColumnRef("price"), Literal(100))

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert expr == Between(ColumnRef("x"), Literal(1), Literal(10))

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert expr == Between(ColumnRef("x"), Literal(1), Literal(10), True)

    def test_in_list(self):
        expr = parse_expression("mode IN ('A', 'B')")
        assert expr == InList(ColumnRef("mode"),
                              (Literal("A"), Literal("B")))

    def test_not_in(self):
        expr = parse_expression("mode NOT IN ('A')")
        assert expr.negated is True

    def test_like(self):
        expr = parse_expression("name LIKE 'PROMO%'")
        assert expr == LikeExpr(ColumnRef("name"), "PROMO%")

    def test_not_like(self):
        assert parse_expression("name NOT LIKE 'x'").negated is True

    def test_like_requires_string(self):
        with pytest.raises(ParseError):
            parse_expression("name LIKE 5")

    def test_is_null(self):
        assert parse_expression("x IS NULL") == IsNull(ColumnRef("x"))
        assert parse_expression("x IS NOT NULL") == IsNull(ColumnRef("x"),
                                                           True)

    def test_date_literal(self):
        expr = parse_expression("DATE '1998-12-01'")
        assert expr == Literal(datetime.date(1998, 12, 1))

    def test_interval_literal(self):
        expr = parse_expression("INTERVAL '90' DAY")
        assert expr == IntervalLiteral(90, "day")

    def test_date_arithmetic(self):
        expr = parse_expression("DATE '1998-12-01' - INTERVAL '90' DAY")
        assert isinstance(expr, BinaryOp) and expr.op == "-"

    def test_case_expression(self):
        expr = parse_expression(
            "CASE WHEN x = 1 THEN 'one' ELSE 'other' END")
        assert isinstance(expr, CaseExpr)
        assert len(expr.whens) == 1
        assert expr.else_result == Literal("other")

    def test_case_without_else(self):
        expr = parse_expression("CASE WHEN x = 1 THEN 2 END")
        assert expr.else_result is None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_qualified_column(self):
        assert parse_expression("t.col") == ColumnRef("col", table="t")

    def test_function_call(self):
        expr = parse_expression("sum(a + b)")
        assert isinstance(expr, FuncCall) and expr.name == "sum"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr == FuncCall("count", (Star(),))

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr.distinct is True

    def test_boolean_and_null_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert parse_expression("NULL") == Literal(None)

    def test_string_escape(self):
        assert parse_expression("'o''brien'") == Literal("o'brien")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra stuff everywhere (")


class TestParseSelect:
    def test_minimal(self):
        select = parse("SELECT a FROM t")
        assert len(select.items) == 1
        assert select.tables[0].name == "t"
        assert select.where is None

    def test_star(self):
        select = parse("SELECT * FROM t")
        assert isinstance(select.items[0].expr, Star)

    def test_aliases(self):
        select = parse("SELECT a AS x, b y FROM t")
        assert select.items[0].alias == "x"
        assert select.items[1].alias == "y"

    def test_table_alias(self):
        select = parse("SELECT a FROM orders o")
        assert select.tables[0].alias == "o"
        assert select.tables[0].binding == "o"

    def test_multiple_tables(self):
        select = parse("SELECT a FROM t1, t2, t3")
        assert [t.name for t in select.tables] == ["t1", "t2", "t3"]

    def test_join_on_desugars_to_where(self):
        select = parse("SELECT a FROM t1 JOIN t2 ON t1.id = t2.id "
                       "WHERE t1.x > 0")
        assert len(select.tables) == 2
        # WHERE is the conjunction of the explicit predicate and the ON.
        assert isinstance(select.where, BinaryOp)
        assert select.where.op == "and"

    def test_inner_join_keyword(self):
        select = parse("SELECT a FROM t1 INNER JOIN t2 ON t1.id = t2.id")
        assert len(select.tables) == 2
        assert select.where is not None

    def test_group_by_having(self):
        select = parse("SELECT a, count(*) FROM t GROUP BY a "
                       "HAVING count(*) > 2")
        assert len(select.group_by) == 1
        assert select.having is not None

    def test_order_by_directions(self):
        select = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC, a + b")
        assert [o.descending for o in select.order_by] == [True, False,
                                                           False]

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 2.5")

    def test_exists_subquery(self):
        select = parse("SELECT a FROM t WHERE EXISTS "
                       "(SELECT * FROM u WHERE u.id = t.id)")
        assert isinstance(select.where, Exists)
        assert select.where.subquery.tables[0].name == "u"

    def test_not_exists(self):
        select = parse("SELECT a FROM t WHERE NOT EXISTS "
                       "(SELECT * FROM u WHERE u.id = t.id)")
        assert isinstance(select.where, UnaryOp)
        assert isinstance(select.where.operand, Exists)

    def test_trailing_semicolon_ok(self):
        parse("SELECT a FROM t;")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a")

    def test_garbage_after_statement_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t SELECT b")

    def test_keyword_as_alias_via_as(self):
        select = parse("SELECT count(*) AS count FROM t")
        assert select.items[0].alias == "count"

    def test_tpch_q1_shape(self):
        from repro.workloads.tpch import tpch_query
        select = parse(tpch_query("q1"))
        assert len(select.items) == 10
        assert len(select.group_by) == 2
        assert len(select.order_by) == 2

    def test_all_paper_queries_parse(self):
        from repro.workloads.tpch import PAPER_QUERIES, tpch_query
        for name in PAPER_QUERIES:
            parse(tpch_query(name))
