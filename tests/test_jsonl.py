"""JSON-Lines adapter: the registry's openness proof.

The differential harness queries the same logical data as CSV and as
JSONL and demands identical results; the adaptive-structure tests
assert the NoDB mechanisms carry over — warm scans stop tokenizing and
converting (binary cache), the positional map's line index kills
newline discovery, and its value-position chunks shrink tokenization
even with the cache disabled.
"""

from __future__ import annotations

import datetime

import pytest

import repro
from repro import (
    DATE,
    FLOAT,
    INTEGER,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)
from repro.errors import JSONLFormatError
from repro.formats.jsonl import member_spans, value_end, write_jsonl
from repro.sql.catalog import Column

ROWS = [
    {"id": 1, "name": "alice", "height": 170.5, "born": "2001-05-20",
     "note": "plain"},
    {"id": 2, "name": "bob, jr.", "height": 182.0, "born": "1998-11-02",
     "note": 'quoted "x"'},
    {"id": 3, "name": "carol", "height": 165.2, "born": "1990-01-15",
     "note": None},
    {"id": 4, "name": "dave", "height": 190.1, "born": "1996-07-30",
     "note": "brackets ] }"},
    {"id": 5, "name": "erin", "height": 158.7, "born": "1999-03-08",
     "note": "x"},
]


def schema() -> Schema:
    return Schema([
        ("id", INTEGER),
        ("name", varchar()),
        ("height", FLOAT),
        ("born", DATE),
        ("note", varchar()),
    ])


def csv_payload() -> bytes:
    lines = []
    for row in ROWS:
        note = row["note"] if row["note"] is not None else ""
        lines.append(f"{row['id']};{row['name']};{row['height']};"
                     f"{row['born']};{note}")
    return ("\n".join(lines) + "\n").encode()


def make_pair(config=None, jsonl_config=None):
    """One engine over the CSV rendering, one over the JSONL rendering
    of the same logical rows."""
    csv_vfs = VirtualFS()
    csv_vfs.create("t.csv", csv_payload())
    csv_db = PostgresRaw(vfs=csv_vfs, config=config)
    csv_db.query("CREATE TABLE t (id INTEGER, name VARCHAR, "
                 "height FLOAT, born DATE, note VARCHAR) USING csv "
                 "OPTIONS (path 't.csv', delimiter ';')")
    jsonl_vfs = VirtualFS()
    write_jsonl(ROWS, jsonl_vfs, "t.jsonl")
    jsonl_db = PostgresRaw(vfs=jsonl_vfs, config=jsonl_config or config)
    jsonl_db.query("CREATE TABLE t (id INTEGER, name VARCHAR, "
                   "height FLOAT, born DATE, note VARCHAR) USING jsonl "
                   "OPTIONS (path 't.jsonl')")
    return csv_db, jsonl_db


QUERIES = [
    "SELECT id, name FROM t",
    "SELECT name, height FROM t WHERE id > 2",
    "SELECT count(*), avg(height) FROM t WHERE born < DATE '1999-01-01'",
    "SELECT note FROM t WHERE id = 2",
    "SELECT id, height FROM t WHERE id IN (1, 4) ORDER BY height DESC",
    "SELECT name FROM t WHERE height BETWEEN 160 AND 185 ORDER BY name",
    "SELECT id, name FROM t WHERE name LIKE '%o%' ORDER BY id DESC",
]


class TestDifferential:
    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results_as_csv(self, query):
        csv_db, jsonl_db = make_pair()
        assert jsonl_db.query(query).rows == csv_db.query(query).rows

    def test_same_results_cold_and_warm(self):
        _csv_db, jsonl_db = make_pair()
        for query in QUERIES:
            cold = jsonl_db.query(query).rows
            warm = jsonl_db.query(query).rows
            assert warm == cold

    def test_small_blocks_differential(self):
        config = PostgresRawConfig(row_block_size=2)
        csv_db, jsonl_db = make_pair(config, config)
        for query in QUERIES:
            assert jsonl_db.query(query).rows == csv_db.query(query).rows

    def test_json_null_is_sql_null(self):
        """One place the renderings legitimately differ: CSV has no
        NULL strings (empty text is ``""``), JSON does (``null``)."""
        _csv_db, jsonl_db = make_pair()
        assert jsonl_db.query("SELECT id FROM t WHERE note IS NULL"
                              ).rows == [(3,)]
        assert jsonl_db.query("SELECT count(*) FROM t "
                              "WHERE note IS NOT NULL").scalar() == 4

    def test_key_order_may_vary_per_line(self):
        vfs = VirtualFS()
        vfs.create("v.jsonl",
                   b'{"a": 1, "b": "x"}\n'
                   b'{"b": "y", "a": 2}\n'
                   b'{"a": 3}\n')
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE v (a INTEGER, b VARCHAR) USING jsonl "
                 "OPTIONS (path 'v.jsonl')")
        result = db.query("SELECT a, b FROM v")
        assert result.rows == [(1, "x"), (2, "y"), (3, None)]
        # Warm: same answer off the adaptive structures.
        assert db.query("SELECT a, b FROM v").rows == result.rows


class TestAdaptiveStructures:
    def test_warm_scan_counters_drop(self):
        """The acceptance bar: the second identical query tokenizes and
        parses (converts) nothing — values come from the binary cache,
        line spans from the positional map."""
        _csv_db, jsonl_db = make_pair()
        query = "SELECT name, height FROM t WHERE id > 1"
        cold = jsonl_db.query(query)
        warm = jsonl_db.query(query)
        assert warm.rows == cold.rows
        assert cold.counters.get("tokenize", 0) > 0
        assert warm.counters.get("tokenize", 0) == 0
        assert cold.counters.get("convert_int", 0) > 0
        assert warm.counters.get("convert_int", 0) == 0
        assert warm.counters.get("convert_float", 0) == 0
        assert cold.counters.get("newline_scan", 0) > 0
        assert warm.counters.get("newline_scan", 0) == 0

    def test_positional_map_reuse_without_cache(self):
        """Cache off, map on: the second query still re-converts, but
        known value positions mean it tokenizes only the value bytes it
        needs instead of whole lines."""
        config = PostgresRawConfig(enable_cache=False)
        _csv_db, jsonl_db = make_pair(jsonl_config=config)
        query = "SELECT height FROM t WHERE id > 0"
        cold = jsonl_db.query(query)
        warm = jsonl_db.query(query)
        assert warm.rows == cold.rows
        assert 0 < warm.counters.get("tokenize", 0) < \
            cold.counters.get("tokenize", 0)
        # Same conversions both times: the saving is tokenization.
        assert warm.counters.get("convert_float") == \
            cold.counters.get("convert_float")
        assert warm.counters.get("newline_scan", 0) == 0

    def test_line_index_and_chunks_populated(self):
        _csv_db, jsonl_db = make_pair()
        jsonl_db.query("SELECT id FROM t WHERE height > 160")
        positional_map = jsonl_db.positional_map_of("t")
        assert positional_map.known_line_count == len(ROWS)
        assert positional_map.has_file_length
        indexed = positional_map.indexed_attrs(0)
        assert 0 in indexed and 2 in indexed  # id and height values
        assert jsonl_db.cache_of("t").bytes_used > 0

    def test_statistics_arrive_from_jsonl_scans(self):
        _csv_db, jsonl_db = make_pair()
        assert jsonl_db.catalog.get("t").stats is None
        jsonl_db.query("SELECT id FROM t")
        stats = jsonl_db.catalog.get("t").stats
        assert stats is not None
        assert stats.version > 0
        assert jsonl_db.catalog.stats_epoch > 0

    def test_appended_rows_visible(self):
        _csv_db, jsonl_db = make_pair()
        assert jsonl_db.query("SELECT count(*) FROM t").scalar() == 5
        jsonl_db.vfs.append_bytes(
            "t.jsonl",
            b'{"id": 6, "name": "frank", "height": 175.0, '
            b'"born": "1983-02-11", "note": "new"}\n')
        assert jsonl_db.query("SELECT count(*) FROM t").scalar() == 6
        assert jsonl_db.query("SELECT name FROM t WHERE id = 6"
                              ).rows == [("frank",)]

    def test_streaming_cursor_abandons_cleanly(self):
        _csv_db, jsonl_db = make_pair(
            jsonl_config=PostgresRawConfig(row_block_size=2))
        session = repro.connect(engine=jsonl_db)
        cursor = session.execute("SELECT id FROM t")
        assert cursor.fetchmany(2) == [(1,), (2,)]
        cursor.close()  # abandon mid-file; partial structures retained
        assert jsonl_db.query("SELECT count(*) FROM t").scalar() == 5


class TestRegistryOpenness:
    def test_registered_via_public_registry(self):
        from repro.formats.registry import available_formats, get_format

        assert "jsonl" in available_formats()
        adapter = get_format("jsonl")
        assert adapter.extensions == (".jsonl", ".ndjson")

    def test_extension_sniffing(self):
        vfs = VirtualFS()
        write_jsonl([{"a": 1}], vfs, "data.jsonl")
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE j (a INTEGER) OPTIONS (path 'data.jsonl')")
        assert db.catalog.get("j").format == "jsonl"

    def test_loaded_engine_refuses_jsonl(self):
        from repro import LoadedDBMS
        from repro.errors import CatalogError

        vfs = VirtualFS()
        write_jsonl([{"a": 1}], vfs, "data.jsonl")
        db = LoadedDBMS(vfs=vfs)
        with pytest.raises(CatalogError):
            db.query("CREATE TABLE j (a INTEGER) USING jsonl "
                     "OPTIONS (path 'data.jsonl')")


class TestTokenizer:
    def test_member_spans_basics(self):
        line = b'{"a": 1, "b": "x, y", "c": [1, {"d": 2}]}'
        spans, scanned = member_spans(line)
        assert scanned == len(line)
        assert line[slice(*spans["a"])] == b"1"
        assert line[slice(*spans["b"])] == b'"x, y"'
        assert line[slice(*spans["c"])] == b'[1, {"d": 2}]'

    def test_escaped_quotes_and_unicode(self):
        line = b'{"s": "he said \\"hi\\"", "t": "\\u00e9"}'
        spans, _ = member_spans(line)
        assert line[slice(*spans["s"])] == b'"he said \\"hi\\""'

    def test_value_end_matches_member_spans(self):
        line = b'{"a": [1, [2, 3]], "b": true, "c": "x}"}'
        spans, _ = member_spans(line)
        for start, end in spans.values():
            assert value_end(line, start) == end

    def test_malformed_lines_raise(self):
        unterminated = b'{"a": "x'
        for bad in (b"[1, 2]", b'{"a": }', b'{"a" 1}', unterminated):
            with pytest.raises(JSONLFormatError):
                member_spans(bad)

    def test_malformed_row_surfaces_as_data_error(self):
        vfs = VirtualFS()
        vfs.create("bad.jsonl", b'{"a": 1}\nnot json\n')
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE b (a INTEGER) USING jsonl "
                 "OPTIONS (path 'bad.jsonl')")
        with pytest.raises(JSONLFormatError):
            db.query("SELECT a FROM b")

    def test_date_values_round_trip(self):
        _csv_db, jsonl_db = make_pair()
        rows = jsonl_db.query("SELECT born FROM t WHERE id = 1").rows
        assert rows == [(datetime.date(2001, 5, 20),)]


class TestSchemaShapes:
    def test_unterminated_last_line(self):
        vfs = VirtualFS()
        vfs.create("u.jsonl", b'{"a": 1}\n{"a": 2}')  # no trailing \n
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE u (a INTEGER) USING jsonl "
                 "OPTIONS (path 'u.jsonl')")
        assert db.query("SELECT a FROM u").rows == [(1,), (2,)]
        assert db.query("SELECT a FROM u").rows == [(1,), (2,)]  # warm

    def test_empty_file(self):
        vfs = VirtualFS()
        vfs.create("e.jsonl", b"")
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE e (a INTEGER) USING jsonl "
                 "OPTIONS (path 'e.jsonl')")
        assert db.query("SELECT count(*) FROM e").scalar() == 0

    def test_mixed_case_keys_match_schema(self):
        vfs = VirtualFS()
        vfs.create("m.jsonl", b'{"Amount": 7}\n')
        db = PostgresRaw(vfs=vfs)
        db.catalog  # engine built
        db.query("CREATE TABLE m (amount INTEGER) USING jsonl "
                 "OPTIONS (path 'm.jsonl')")
        assert db.query("SELECT amount FROM m").rows == [(7,)]


class TestNumericFastPath:
    """The batch materializer converts clean bare numeric tokens through
    one byte-matrix astype instead of a per-row Python loop. Dirty rows
    (nulls, quoted numbers, huge widths) must fall back per value with
    identical results and identical plain-Python value types."""

    def test_mixed_clean_dirty_and_wide_values(self):
        lines = [
            b'{"a": 1, "b": 1.5}',
            b'{"a": -22, "b": -0.25}',
            b'{"a": null, "b": 2e3}',
            b'{"a": "333", "b": null}',   # quoted: JSON-decoded path
            b'{"a": 4444, "b": 0.125}',
            # 70-digit integer: wider than the 64-byte matrix cap, the
            # whole column falls back for this block
            b'{"a": ' + b"9" * 70 + b', "b": 3.5}',
        ]
        vfs = VirtualFS()
        vfs.create("wide.jsonl", b"\n".join(lines) + b"\n")
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE w (a BIGINT, b FLOAT) USING jsonl "
                 "OPTIONS (path 'wide.jsonl')")
        rows = db.query("SELECT a, b FROM w").rows
        assert rows == [(1, 1.5), (-22, -0.25), (None, 2000.0),
                        (333, None), (4444, 0.125),
                        (int("9" * 70), 3.5)]
        for a, b in rows:
            assert a is None or type(a) is int
            assert b is None or type(b) is float

    def test_fast_path_matches_scalar_scan(self):
        lines = [('{"a": %d, "b": %s}' % (i, i / 8)).encode()
                 for i in range(64)]
        vfs = VirtualFS()
        vfs.create("n.jsonl", b"\n".join(lines) + b"\n")
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE n (a INTEGER, b FLOAT) USING jsonl "
                 "OPTIONS (path 'n.jsonl')")
        rows = db.query("SELECT a, b FROM n WHERE a >= 0").rows
        assert rows == [(i, i / 8) for i in range(64)]
