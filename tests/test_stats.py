"""Tests for column statistics and the on-the-fly collector."""

import datetime
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.statistics import ReservoirSampler, StatsCollector
from repro.simcost.model import CostModel
from repro.sql.catalog import Schema
from repro.sql.datatypes import INTEGER, varchar
from repro.sql.stats import ColumnStats, TableStats


def stats_from(values, row_count=None, nulls=0):
    column = ColumnStats(name="c")
    sample = [v for v in values if v is not None]
    total = row_count if row_count is not None else len(values)
    column.merge_sample(sample, total, nulls, len(values))
    return column


class TestColumnStats:
    def test_min_max(self):
        column = stats_from([5, 1, 9, 3])
        assert column.min_value == 1
        assert column.max_value == 9

    def test_null_fraction(self):
        column = stats_from([1, None, None, 4], nulls=2)
        assert column.null_frac == pytest.approx(0.5)

    def test_ndistinct_all_unique_scales_to_rowcount(self):
        column = stats_from(list(range(100)), row_count=10_000)
        assert column.n_distinct == 10_000

    def test_ndistinct_few_values(self):
        column = stats_from([1, 2, 1, 2, 1, 2] * 50, row_count=10_000)
        assert column.n_distinct <= 10

    def test_eq_selectivity_uses_mcv(self):
        values = ["a"] * 80 + ["b"] * 15 + ["c"] * 5
        column = stats_from(values, row_count=100)
        assert column.selectivity_eq("a") == pytest.approx(0.8)
        assert column.selectivity_eq("b") == pytest.approx(0.15)

    def test_eq_selectivity_unseen_value(self):
        values = ["a"] * 99 + ["b"]
        column = stats_from(values, row_count=1000)
        assert 0 <= column.selectivity_eq("zzz") < 0.05

    def test_range_selectivity_uniform(self):
        values = list(range(1000))
        column = stats_from(values, row_count=1000)
        assert column.selectivity_range("<", 250) == pytest.approx(
            0.25, abs=0.05)
        assert column.selectivity_range(">=", 900) == pytest.approx(
            0.1, abs=0.05)

    def test_range_selectivity_out_of_bounds(self):
        column = stats_from(list(range(100)))
        assert column.selectivity_range("<", -5) == 0.0
        assert column.selectivity_range("<", 200) == 1.0
        assert column.selectivity_range(">", 200) == 0.0

    def test_range_selectivity_dates(self):
        base = datetime.date(1994, 1, 1)
        values = [base + datetime.timedelta(days=i) for i in range(365)]
        column = stats_from(values, row_count=365)
        mid = datetime.date(1994, 7, 2)
        assert column.selectivity_range("<", mid) == pytest.approx(
            0.5, abs=0.05)

    def test_range_selectivity_no_stats_default(self):
        column = ColumnStats(name="c")
        assert column.selectivity_range("<", 10) == pytest.approx(1 / 3)

    def test_histogram_built_for_diverse_numeric(self):
        column = stats_from(list(range(500)))
        assert len(column.histogram) == 11

    def test_no_histogram_for_few_distinct(self):
        column = stats_from([1, 2, 3] * 100)
        assert column.histogram == []

    def test_all_null_column(self):
        column = stats_from([], row_count=10, nulls=10)
        column2 = ColumnStats(name="c")
        column2.merge_sample([], 10, 10, 10)
        assert column2.n_distinct == 0.0
        assert column2.null_frac == 1.0

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_selectivities_always_in_unit_interval(self, values):
        column = stats_from(values, row_count=len(values))
        for op in ("<", "<=", ">", ">="):
            for probe in (-1, 0, 50, 100, 101):
                sel = column.selectivity_range(op, probe)
                assert 0.0 <= sel <= 1.0
        assert 0.0 <= column.selectivity_eq(values[0]) <= 1.0


class TestReservoirSampler:
    def test_small_stream_kept_entirely(self):
        sampler = ReservoirSampler(100)
        for i in range(50):
            sampler.add(i)
        assert sorted(sampler.sample) == list(range(50))

    def test_capacity_respected(self):
        sampler = ReservoirSampler(10)
        for i in range(1000):
            sampler.add(i)
        assert len(sampler.sample) == 10
        assert sampler.seen == 1000

    def test_nulls_counted_not_sampled(self):
        sampler = ReservoirSampler(10)
        sampler.add(None)
        sampler.add(1)
        assert sampler.null_count == 1
        assert sampler.sample == [1]

    def test_deterministic_under_seed(self):
        a = ReservoirSampler(5, seed=42)
        b = ReservoirSampler(5, seed=42)
        for i in range(100):
            a.add(i)
            b.add(i)
        assert a.sample == b.sample

    def test_sample_is_roughly_uniform(self):
        rng = random.Random(0)
        hits = 0
        trials = 200
        for t in range(trials):
            sampler = ReservoirSampler(10, seed=t)
            for i in range(100):
                sampler.add(i)
            hits += sum(1 for v in sampler.sample if v < 50)
        # ~50% of sampled values should come from the first half.
        assert 0.35 < hits / (10 * trials) < 0.65


class TestStatsCollector:
    def schema(self):
        return Schema([("x", INTEGER), ("y", INTEGER), ("s", varchar())])

    def test_collects_only_requested_attrs(self):
        collector = StatsCollector(CostModel(), self.schema(), [0, 2])
        for i in range(20):
            collector.add_row({0: i, 2: f"v{i}"})
        stats = collector.finalize(TableStats(), row_count=20)
        assert stats.has_column("x")
        assert stats.has_column("s")
        assert not stats.has_column("y")
        assert stats.row_count == 20

    def test_missing_values_tolerated(self):
        # Selective parsing may skip attrs for non-qualifying rows.
        collector = StatsCollector(CostModel(), self.schema(), [0, 1])
        collector.add_row({0: 5})
        collector.add_row({0: 6, 1: 60})
        stats = collector.finalize(TableStats(), row_count=2)
        assert stats.column("x").max_value == 6
        assert stats.column("y").max_value == 60

    def test_augments_existing_stats(self):
        schema = self.schema()
        first = StatsCollector(CostModel(), schema, [0])
        first.add_row({0: 1})
        table_stats = first.finalize(TableStats(), 1)
        second = StatsCollector(CostModel(), schema, [1])
        second.add_row({1: 2})
        table_stats = second.finalize(table_stats, 1)
        assert table_stats.has_column("x") and table_stats.has_column("y")

    def test_untouched_sampler_leaves_no_stats(self):
        collector = StatsCollector(CostModel(), self.schema(), [0])
        stats = collector.finalize(TableStats(), 0)
        assert not stats.has_column("x")
