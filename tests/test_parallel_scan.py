"""Parallel chunk scans: determinism, accounting, and the regroup pass.

The contract under test (the PR's acceptance bar): for any workload,
``scan_workers ∈ {1, 2, 4}`` produce

* identical result *sequences* (not just sets — ordered delivery),
* byte-identical positional-map and binary-cache structure dumps,
* identical simcost counters (exact equality, floats included) and
  identical virtual clock time (same float accumulation order).

Workers compute row-block groups against recording models; the merge
replays the op logs in canonical group order — so everything observable
through the engine is independent of the worker count. The structure
dump comparators are reused from the PR 1 differential harness.

Also covered here: the scheduler's worker overlap accounting
(``QueryJob.worker_tasks``), error-path determinism, abandoned-scan
cleanup, and the idle tuner's canonical PM chunk regrouping satellite
(flush-order-independent layouts).
"""

import random

import pytest

import repro
from repro import (
    INTEGER,
    IdleTuner,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
)
from repro.workloads.micro import generate_micro_csv

from test_batch_differential import (
    cache_dump,
    pm_dump,
    random_query,
    random_schema,
    random_table,
)
from repro.formats.csvfmt import write_csv


def engine_with_workers(schema, payload: bytes, workers: int,
                        block_size: int = 16,
                        **config_kwargs) -> PostgresRaw:
    vfs = VirtualFS()
    vfs.create("t.csv", payload)
    engine = PostgresRaw(
        config=PostgresRawConfig(row_block_size=block_size,
                                 scan_workers=workers, **config_kwargs),
        vfs=vfs)
    engine.register_csv("t", "t.csv", schema)
    return engine


def full_state(engine, table="t"):
    """Everything the determinism contract covers, in one snapshot."""
    return {
        "pm": pm_dump(engine.positional_map_of(table)),
        "cache": cache_dump(engine.cache_of(table)),
        "counters": engine.counters(),
        "clock": engine.clock.now(),
    }


WORKER_COUNTS = (1, 2, 4)


class TestParallelDeterminism:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_workloads_identical_across_worker_counts(self, seed):
        """Result sequences, PM/cache dumps, counters and the clock
        itself must be independent of scan_workers."""
        rng = random.Random(61000 + seed)
        schema = random_schema(rng)
        payload = write_csv(random_table(rng, schema))
        block_size = rng.choice([1, 3, 8, 17, 64])
        queries = [random_query(rng, schema) for _ in range(5)]

        engines = {w: engine_with_workers(schema, payload, w, block_size)
                   for w in WORKER_COUNTS}
        for sql in queries:
            results = {w: engines[w].query(sql) for w in WORKER_COUNTS}
            for w in WORKER_COUNTS[1:]:
                # Exact sequence equality: ordered delivery, not sets.
                assert results[w].rows == results[1].rows, \
                    f"seed={seed} workers={w}: {sql!r}"
                assert results[w].counters == results[1].counters, \
                    f"seed={seed} workers={w}: {sql!r}"
            states = {w: full_state(engines[w]) for w in WORKER_COUNTS}
            for w in WORKER_COUNTS[1:]:
                assert states[w] == states[1], \
                    f"seed={seed} workers={w} diverged after {sql!r}"

    @pytest.mark.parametrize("kwargs", [
        dict(enable_cache=False),
        dict(enable_positional_map=False),
        dict(enable_statistics=False),
        dict(enable_cache=False, enable_statistics=False),
    ])
    def test_feature_ablations_stay_deterministic(self, kwargs):
        rng = random.Random(4711)
        schema = random_schema(rng)
        payload = write_csv(random_table(rng, schema))
        engines = {w: engine_with_workers(schema, payload, w, 8, **kwargs)
                   for w in WORKER_COUNTS}
        for sql in [random_query(rng, schema) for _ in range(4)]:
            results = {w: engines[w].query(sql) for w in WORKER_COUNTS}
            for w in WORKER_COUNTS[1:]:
                assert results[w].rows == results[1].rows, sql
                assert full_state(engines[w]) == full_state(engines[1])

    def test_budgeted_structures_identical(self):
        """Eviction order under PM/cache budgets depends on insert
        order — which the merge keeps canonical."""
        rng = random.Random(99)
        schema = random_schema(rng)
        payload = write_csv(random_table(rng, schema) * 3)
        engines = {
            w: engine_with_workers(schema, payload, w, 8,
                                   pm_budget_bytes=2048,
                                   cache_budget_bytes=4096)
            for w in WORKER_COUNTS
        }
        for sql in [random_query(rng, schema) for _ in range(4)]:
            for w in WORKER_COUNTS:
                engines[w].query(sql)
            for w in WORKER_COUNTS[1:]:
                assert full_state(engines[w]) == full_state(engines[1])

    def test_prepared_statements_and_streaming_cursors(self):
        vfs1, vfs4 = VirtualFS(), VirtualFS()
        schema = generate_micro_csv(vfs1, "m.csv", rows=500, nattrs=6,
                                    seed=7)
        generate_micro_csv(vfs4, "m.csv", rows=500, nattrs=6, seed=7)
        engines = {}
        for workers, vfs in ((1, vfs1), (4, vfs4)):
            engine = PostgresRaw(config=PostgresRawConfig(
                row_block_size=64, scan_workers=workers), vfs=vfs)
            engine.register_csv("m", "m.csv", schema)
            engines[workers] = engine
        rows = {}
        for workers, engine in engines.items():
            session = repro.connect(engine=engine)
            stmt = session.prepare("SELECT a1, a3 FROM m WHERE a2 < ?")
            got = []
            cursor = stmt.execute((600_000_000,))
            while True:
                chunk = cursor.fetchmany(37)
                if not chunk:
                    break
                got.extend(chunk)
            got.append(tuple(stmt.execute((100_000_000,)).fetchall()))
            rows[workers] = got
        assert rows[4] == rows[1]
        assert full_state(engines[4], "m") == full_state(engines[1], "m")

    def test_malformed_csv_raises_identically(self):
        """A short line must fail with the same error, after the same
        charges, at any worker count (the merge replays a failed
        group's recorded charges before re-raising in order)."""
        schema = Schema([("c0", INTEGER), ("c1", INTEGER),
                         ("c2", INTEGER)])
        rows = [[str(i), str(i * 2), str(i * 3)] for i in range(30)]
        payload = write_csv(rows)[:-1] + b"\n5,6\n"  # short final line
        outcomes = {}
        for workers in WORKER_COUNTS:
            engine = engine_with_workers(schema, payload, workers, 8)
            with pytest.raises(repro.errors.CSVFormatError) as info:
                engine.query("SELECT c2 FROM t")
            outcomes[workers] = (str(info.value), engine.counters(),
                                 engine.clock.now())
        assert outcomes[2] == outcomes[1]
        assert outcomes[4] == outcomes[1]

    def test_abandoned_scan_leaves_merged_prefix_only(self):
        """Closing a cursor mid-stream cancels the unmerged tail; the
        structures hold exactly the merged prefix, and a following full
        scan converges to the serial engine's state."""
        vfs1, vfs4 = VirtualFS(), VirtualFS()
        schema = generate_micro_csv(vfs1, "m.csv", rows=400, nattrs=5,
                                    seed=11)
        generate_micro_csv(vfs4, "m.csv", rows=400, nattrs=5, seed=11)
        engines = {}
        for workers, vfs in ((1, vfs1), (4, vfs4)):
            engine = PostgresRaw(config=PostgresRawConfig(
                row_block_size=32, scan_workers=workers), vfs=vfs)
            engine.register_csv("m", "m.csv", schema)
            engines[workers] = engine
            session = repro.connect(engine=engine)
            cursor = session.execute("SELECT a1 FROM m WHERE a2 > 0")
            assert len(cursor.fetchmany(70)) == 70
            cursor.close()
        assert pm_dump(engines[4].positional_map_of("m")) == \
            pm_dump(engines[1].positional_map_of("m"))
        assert cache_dump(engines[4].cache_of("m")) == \
            cache_dump(engines[1].cache_of("m"))
        rows = {w: engines[w].query("SELECT a1, a4 FROM m").rows
                for w in (1, 4)}
        assert rows[4] == rows[1]
        assert pm_dump(engines[4].positional_map_of("m")) == \
            pm_dump(engines[1].positional_map_of("m"))
        assert cache_dump(engines[4].cache_of("m")) == \
            cache_dump(engines[1].cache_of("m"))


class TestPoolLifecycle:
    def test_env_default_clamps_unusable_values(self, monkeypatch):
        for bad in ("0", "-3", "abc"):
            monkeypatch.setenv("REPRO_SCAN_WORKERS", bad)
            assert PostgresRawConfig().scan_workers == 1, bad
        monkeypatch.setenv("REPRO_SCAN_WORKERS", "3")
        assert PostgresRawConfig().scan_workers == 3
        with pytest.raises(repro.errors.BudgetError):
            PostgresRawConfig(scan_workers=0)  # explicit stays strict

    def test_engine_close_releases_and_lazily_restarts_pool(self):
        vfs = VirtualFS()
        schema = generate_micro_csv(vfs, "m.csv", rows=64, nattrs=4,
                                    seed=1)
        engine = PostgresRaw(config=PostgresRawConfig(
            row_block_size=16, scan_workers=2), vfs=vfs)
        engine.register_csv("m", "m.csv", schema)
        first = engine.query("SELECT a1 FROM m").rows
        assert engine.scan_pool.started
        engine.close()
        assert not engine.scan_pool.started
        engine.close()  # idempotent
        # The engine keeps working; the pool restarts on demand.
        engine.drop_auxiliary("m")
        assert engine.query("SELECT a1 FROM m").rows == first
        assert engine.scan_pool.started
        engine.close()

    def test_close_during_live_scan_fails_cleanly(self):
        """engine.close() while a parallel scan is streaming must
        surface a contained engine error on the next fetch — never a
        raw CancelledError (a BaseException that would escape the
        scheduler's containment and leak the admission slot)."""
        vfs = VirtualFS()
        schema = generate_micro_csv(vfs, "m.csv", rows=2000, nattrs=6,
                                    seed=2)
        engine = PostgresRaw(config=PostgresRawConfig(
            row_block_size=16, scan_workers=2, batch_read_bytes=512),
            vfs=vfs)
        engine.register_csv("m", "m.csv", schema)
        session = repro.connect(engine=engine, max_in_flight=1)
        cursor = session.execute("SELECT a1 FROM m")
        assert len(cursor.fetchmany(20)) == 20  # scan mid-stream
        engine.close()
        from repro.api.exceptions import Error as ApiError
        try:
            while cursor.fetchmany(64):
                pass
        except ApiError:
            pass  # contained DB-API error, not a raw CancelledError
        # Either way the slot was released: with max_in_flight=1 a new
        # query can only be admitted if the wedge never happened, and
        # it runs to completion on the lazily restarted pool.
        fresh = session.execute("SELECT a2 FROM m")
        assert len(fresh.fetchall()) == 2000
        assert engine.shared_scheduler().in_flight == 0


class TestSchedulerWorkerOverlap:
    def micro_engine(self, workers: int) -> PostgresRaw:
        vfs = VirtualFS()
        schema = generate_micro_csv(vfs, "m.csv", rows=600, nattrs=8,
                                    seed=3)
        engine = PostgresRaw(config=PostgresRawConfig(
            row_block_size=64, scan_workers=workers), vfs=vfs)
        engine.register_csv("m", "m.csv", schema)
        return engine

    def test_serial_engine_has_no_pool(self):
        engine = self.micro_engine(1)
        assert engine.scan_pool is None
        session = repro.connect(engine=engine)
        cursor = session.execute("SELECT a1 FROM m")
        cursor.fetchall()
        assert cursor.worker_tasks == 0

    def test_interleaved_jobs_both_fan_out(self):
        """Two admitted queries interleaved at batch boundaries each
        dispatch their own groups to the shared pool — and keep their
        futures in flight across yields, which is the overlap
        mechanism. Per-job worker_tasks attributes the fan-out."""
        engine = self.micro_engine(2)
        assert engine.scan_pool is not None
        s1 = repro.connect(engine=engine, max_in_flight=4)
        s2 = repro.connect(engine=engine)
        c1 = s1.execute("SELECT a1 FROM m WHERE a1 > 0")
        c2 = s2.execute("SELECT a2, a5 FROM m")
        out1, out2 = [], []
        while True:
            chunk1 = c1.fetchmany(50)
            chunk2 = c2.fetchmany(50)
            out1.extend(chunk1)
            out2.extend(chunk2)
            if not chunk1 and not chunk2:
                break
        assert c1.worker_tasks > 0
        assert c2.worker_tasks > 0
        assert engine.scan_pool.tasks_submitted >= (c1.worker_tasks
                                                    + c2.worker_tasks)
        # Same interleave on a serial engine: identical rows and
        # identical structures (the cooperative-interleave differential
        # now also spans the worker fan-out).
        serial = self.micro_engine(1)
        t1 = repro.connect(engine=serial, max_in_flight=4)
        t2 = repro.connect(engine=serial)
        d1 = t1.execute("SELECT a1 FROM m WHERE a1 > 0")
        d2 = t2.execute("SELECT a2, a5 FROM m")
        ref1, ref2 = [], []
        while True:
            chunk1 = d1.fetchmany(50)
            chunk2 = d2.fetchmany(50)
            ref1.extend(chunk1)
            ref2.extend(chunk2)
            if not chunk1 and not chunk2:
                break
        assert out1 == ref1 and out2 == ref2
        assert pm_dump(engine.positional_map_of("m")) == \
            pm_dump(serial.positional_map_of("m"))
        assert cache_dump(engine.cache_of("m")) == \
            cache_dump(serial.cache_of("m"))

    def test_per_job_counters_include_worker_charges(self):
        """Worker-side charges replay inside the owning pull, so the
        per-job ledgers sum to (at most) the engine totals exactly as
        under serial scans."""
        engine = self.micro_engine(4)
        session = repro.connect(engine=engine)
        c1 = session.execute("SELECT a1 FROM m")
        c2 = session.execute("SELECT a3 FROM m")
        while c1.fetchmany(64) or c2.fetchmany(64):
            pass
        counters1, counters2 = c1.counters(), c2.counters()
        totals = engine.counters()
        for event in set(counters1) | set(counters2):
            assert (counters1.get(event, 0) + counters2.get(event, 0)
                    <= totals.get(event, 0) + 1e-9), event
        # The cold scan's conversions happened on workers; they must
        # appear in the first query's ledger.
        assert counters1.get("convert_int", 0) > 0


class TestCanonicalRegroup:
    def build(self, order: tuple[str, ...]) -> PostgresRaw:
        vfs = VirtualFS()
        schema = generate_micro_csv(vfs, "m.csv", rows=300, nattrs=6,
                                    seed=5)
        engine = PostgresRaw(config=PostgresRawConfig(row_block_size=32),
                             vfs=vfs)
        engine.register_csv("m", "m.csv", schema)
        for sql in order:
            engine.query(sql)
        return engine

    QUERIES = ("SELECT a2 FROM m WHERE a4 > 0",
               "SELECT a3, a5 FROM m",
               "SELECT a1 FROM m WHERE a2 > 0")

    def test_regroup_converges_flush_order_dependent_layouts(self):
        """Different query orders leave the same map *content* but
        different vertical chunk groups; after the idle tuner's
        regroup pass the full dumps are byte-identical."""
        forward = self.build(self.QUERIES)
        backward = self.build(tuple(reversed(self.QUERIES)))
        assert pm_dump(forward.positional_map_of("m")) != \
            pm_dump(backward.positional_map_of("m"))
        rewritten_f = IdleTuner(forward).regroup_maps()
        rewritten_b = IdleTuner(backward).regroup_maps()
        assert rewritten_f > 0 and rewritten_b > 0
        assert pm_dump(forward.positional_map_of("m")) == \
            pm_dump(backward.positional_map_of("m"))

    def test_regroup_is_idempotent_and_content_preserving(self):
        engine = self.build(self.QUERIES)
        pm = engine.positional_map_of("m")
        before = {}
        for block in list(pm._directory):
            for attr in pm.indexed_attrs(block):
                column = pm.positions(block, attr)
                before[(block, attr)] = column.tolist()
        IdleTuner(engine).regroup_maps()
        for (block, attr), expected in before.items():
            got = pm.positions(block, attr)
            assert got is not None
            assert got.tolist()[:len(expected)] == expected, (block, attr)
        dump = pm_dump(pm)
        assert IdleTuner(engine).regroup_maps() == 0  # already canonical
        assert pm_dump(pm) == dump
        # Every block now holds exactly one chunk, sorted group.
        for (group, _block) in pm._chunks:
            assert list(group) == sorted(group)
        # And queries still answer correctly from the regrouped map.
        fresh = self.build(self.QUERIES)
        for sql in self.QUERIES:
            assert engine.query(sql).rows == fresh.query(sql).rows

    def test_regroup_charges_maintenance_cost(self):
        engine = self.build(self.QUERIES)
        before = engine.clock.now()
        inserts_before = engine.counters().get("map_insert", 0)
        IdleTuner(engine).regroup_maps("m")
        assert engine.clock.now() > before
        assert engine.counters().get("map_insert", 0) > inserts_before

    def test_parallel_and_serial_interleaves_converge_after_regroup(self):
        """The de-flake satellite: interleaved streaming cursors under
        different worker counts leave content-equal maps whose layouts
        may differ from a serial run; regroup makes the *full* dumps
        comparable."""
        def run(workers: int) -> PostgresRaw:
            vfs = VirtualFS()
            schema = generate_micro_csv(vfs, "m.csv", rows=300, nattrs=6,
                                        seed=5)
            engine = PostgresRaw(config=PostgresRawConfig(
                row_block_size=32, scan_workers=workers), vfs=vfs)
            engine.register_csv("m", "m.csv", schema)
            session = repro.connect(engine=engine, max_in_flight=4)
            c1 = session.execute(self.QUERIES[0])
            c2 = session.execute(self.QUERIES[1])
            while c1.fetchmany(40) or c2.fetchmany(40):
                pass
            return engine

        for workers in (1, 2):
            inter = run(workers)
            IdleTuner(inter).regroup_maps()
            reference = self.build(self.QUERIES[:2])
            IdleTuner(reference).regroup_maps()
            assert pm_dump(inter.positional_map_of("m")) == \
                pm_dump(reference.positional_map_of("m"))
