"""Tests for the binary cache (§4.3)."""

import pytest

from repro.core.cache import BinaryCache, CacheBlock
from repro.errors import StorageError
from repro.simcost.clock import CostEvent
from repro.simcost.model import CostModel


def make_cache(budget=None):
    model = CostModel()
    return BinaryCache(model, budget), model


class TestBasics:
    def test_miss_then_hit(self):
        cache, _ = make_cache()
        assert cache.get(1, 0) is None
        cache.put(1, 0, 4, [(0, 10), (2, 30)], "int")
        block = cache.get(1, 0)
        assert block.get(0) == (True, 10)
        assert block.get(1) == (False, None)
        assert block.get(2) == (True, 30)
        assert cache.hits == 1 and cache.misses == 1

    def test_partial_blocks_merge(self):
        # "a previously accessed attribute or even parts of an attribute"
        cache, _ = make_cache()
        cache.put(1, 0, 4, [(0, 10)], "int")
        cache.put(1, 0, 4, [(1, 20), (3, 40)], "int")
        block = cache.get(1, 0)
        assert block.filled == 3
        assert not block.complete
        cache.put(1, 0, 4, [(2, 30)], "int")
        assert cache.get(1, 0).complete

    def test_merge_does_not_overwrite(self):
        cache, _ = make_cache()
        cache.put(1, 0, 2, [(0, 10)], "int")
        cache.put(1, 0, 2, [(0, 99)], "int")
        assert cache.get(1, 0).get(0) == (True, 10)

    def test_block_growth_on_append(self):
        cache, _ = make_cache()
        cache.put(1, 0, 2, [(0, 10), (1, 20)], "int")
        cache.put(1, 0, 4, [(3, 40)], "int")   # file grew (§4.5)
        block = cache.get(1, 0)
        assert len(block.mask) == 4
        assert block.get(0) == (True, 10)
        assert block.get(3) == (True, 40)

    def test_row_out_of_range_rejected(self):
        cache, _ = make_cache()
        with pytest.raises(StorageError):
            cache.put(1, 0, 2, [(5, 50)], "int")

    def test_empty_entries_noop(self):
        cache, model = make_cache()
        cache.put(1, 0, 4, [], "int")
        assert cache.get(1, 0) is None
        assert model.count(CostEvent.CACHE_WRITE) == 0

    def test_write_charges(self):
        cache, model = make_cache()
        cache.put(1, 0, 4, [(0, 1), (1, 2)], "int")
        assert model.count(CostEvent.CACHE_WRITE) == 2


class TestBudgetAndPriority:
    def test_budget_enforced(self):
        cache, _ = make_cache(budget=100)
        for block in range(10):
            cache.put(1, block, 4, [(i, i) for i in range(4)], "int")
        assert cache.bytes_used <= 100
        assert cache.evictions > 0

    def test_string_bytes_measured_per_value(self):
        cache, _ = make_cache()
        cache.put(1, 0, 2, [(0, "abc")], "str")
        assert cache.bytes_used == 4  # len + 1
        cache.put(1, 0, 2, [(1, "defghi")], "str")
        assert cache.bytes_used == 4 + 7

    def test_cheap_conversions_evicted_first(self):
        # §4.3: "priority to attributes more costly to convert" — the
        # string block goes before the int block even though the int
        # block is older.
        cache, _ = make_cache(budget=100)
        cache.put(1, 0, 8, [(i, i) for i in range(8)], "int")        # 64 B
        cache.put(2, 0, 8, [(i, "abcd") for i in range(8)], "str")   # 40 B
        # 104 B > 100: the (newer!) string block is evicted, not the int.
        assert cache.get(2, 0) is None
        assert cache.get(1, 0) is not None
        # Typed blocks cost their full array allocation (honest
        # nbytes), so a 4-row float block is 32 B regardless of fill.
        cache.put(3, 0, 4, [(i, 1.5) for i in range(4)], "float")    # 32 B
        assert cache.bytes_used == 96
        assert cache.get(1, 0) is not None
        assert cache.get(3, 0) is not None

    def test_lru_within_same_family(self):
        cache, _ = make_cache(budget=64)
        cache.put(1, 0, 4, [(i, i) for i in range(4)], "int")   # 32 B
        cache.put(1, 1, 4, [(i, i) for i in range(4)], "int")   # 32 B
        cache.get(1, 0)                                          # refresh
        cache.put(1, 2, 4, [(i, i) for i in range(4)], "int")   # evict
        assert cache.get(1, 1) is None
        assert cache.get(1, 0) is not None
        assert cache.get(1, 2) is not None

    def test_utilization(self):
        cache, _ = make_cache(budget=64)
        assert cache.utilization() == 0.0
        cache.put(1, 0, 4, [(i, i) for i in range(4)], "int")
        assert cache.utilization() == pytest.approx(0.5)

    def test_utilization_unbounded(self):
        cache, _ = make_cache()
        assert cache.utilization() == 0.0
        cache.put(1, 0, 1, [(0, 1)], "int")
        assert cache.utilization() == 1.0


class TestInvalidation:
    def test_invalidate_attr(self):
        cache, _ = make_cache()
        cache.put(1, 0, 2, [(0, 1)], "int")
        cache.put(2, 0, 2, [(0, 2)], "int")
        cache.invalidate_attr(1)
        assert cache.get(1, 0) is None
        assert cache.get(2, 0) is not None
        # One 2-row int block remains: 16 B of array allocation.
        assert cache.bytes_used == 16

    def test_clear(self):
        cache, _ = make_cache()
        cache.put(1, 0, 2, [(0, 1)], "int")
        cache.clear()
        assert cache.bytes_used == 0
        assert cache.get(1, 0) is None


class TestCacheBlock:
    def test_get_out_of_range_is_miss(self):
        block = CacheBlock("int", [1], bytearray([1]))
        assert block.get(5) == (False, None)

    def test_empty_block_not_complete(self):
        assert CacheBlock("int").complete is False
