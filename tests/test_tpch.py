"""Tests for the TPC-H substrate: dbgen invariants and the paper's
query subset, differentially across engines (§5.2)."""

import datetime

import pytest

from repro import ExternalFilesDBMS, PostgresRawConfig
from repro.workloads.tpch import (
    PAPER_QUERIES,
    TPCH_SCHEMAS,
    tpch_query,
    tpch_schema,
)
from tests.conftest import fresh_loaded_tpch, fresh_raw_tpch


def parse_table(fs, data, table):
    schema = tpch_schema(table)
    rows = []
    for line in fs.read_bytes(data.path(table)).decode().splitlines():
        values = line.split(",")
        rows.append({
            col.name: (col.dtype.parse(v) if v != "" else None)
            for col, v in zip(schema.columns, values)
        })
    return rows


class TestDbgen:
    def test_row_count_ratios(self, tpch_tiny):
        _, data = tpch_tiny
        counts = data.row_counts
        assert counts["region"] == 5
        assert counts["nation"] == 25
        assert counts["partsupp"] == 4 * counts["part"]
        assert 1 <= counts["lineitem"] / counts["orders"] <= 7

    def test_deterministic_under_seed(self, tpch_tiny):
        from repro import VirtualFS
        from repro.workloads.tpch import generate_tpch
        fs1, fs2 = VirtualFS(), VirtualFS()
        generate_tpch(fs1, scale_factor=0.0002, seed=9)
        generate_tpch(fs2, scale_factor=0.0002, seed=9)
        assert fs1.read_bytes("tpch/lineitem.csv") == fs2.read_bytes(
            "tpch/lineitem.csv")

    def test_all_tables_parse_against_schema(self, tpch_tiny):
        fs, data = tpch_tiny
        for table in TPCH_SCHEMAS:
            rows = parse_table(fs, data, table)
            assert len(rows) == data.row_counts[table]

    def test_foreign_keys_resolve(self, tpch_tiny):
        fs, data = tpch_tiny
        customers = {r["c_custkey"] for r in parse_table(fs, data,
                                                         "customer")}
        orders = parse_table(fs, data, "orders")
        assert all(o["o_custkey"] in customers for o in orders)
        order_keys = {o["o_orderkey"] for o in orders}
        lineitems = parse_table(fs, data, "lineitem")
        assert all(l["l_orderkey"] in order_keys for l in lineitems)

    def test_date_semantics(self, tpch_tiny):
        fs, data = tpch_tiny
        for item in parse_table(fs, data, "lineitem"):
            assert item["l_shipdate"] > datetime.date(1992, 1, 1)
            assert item["l_receiptdate"] > item["l_shipdate"]
        cutoff = datetime.date(1995, 6, 17)
        for item in parse_table(fs, data, "lineitem"):
            if item["l_returnflag"] == "N":
                assert item["l_receiptdate"] > cutoff
            else:
                assert item["l_receiptdate"] <= cutoff

    def test_value_domains(self, tpch_tiny):
        fs, data = tpch_tiny
        parts = parse_table(fs, data, "part")
        assert any(p["p_type"].startswith("PROMO") for p in parts)
        assert all(1 <= p["p_size"] <= 50 for p in parts)
        customers = parse_table(fs, data, "customer")
        segments = {c["c_mktsegment"] for c in customers}
        assert "BUILDING" in segments


@pytest.fixture(scope="module")
def engines(tpch_tiny):
    raw = fresh_raw_tpch(tpch_tiny)
    loaded = fresh_loaded_tpch(tpch_tiny)
    return raw, loaded


def normalize(rows):
    """Round floats to 9 significant digits: different plans accumulate
    sums in different orders, producing 1-ulp differences."""
    def norm_value(value):
        if isinstance(value, float):
            return float(f"{value:.9g}")
        return value
    return sorted(repr(tuple(norm_value(v) for v in row)) for row in rows)


class TestPaperQueries:
    @pytest.mark.parametrize("name", PAPER_QUERIES)
    def test_raw_and_loaded_agree(self, engines, name):
        raw, loaded = engines
        raw_rows = normalize(raw.query(tpch_query(name)).rows)
        loaded_rows = normalize(loaded.query(tpch_query(name)).rows)
        assert raw_rows == loaded_rows

    def test_q1_shape(self, engines, tpch_tiny):
        raw, _ = engines
        result = raw.query(tpch_query("q1"))
        assert result.columns[:2] == ["l_returnflag", "l_linestatus"]
        flags = {(row[0], row[1]) for row in result.rows}
        assert flags <= {("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")}
        # count_order sums to all lineitems passing the date filter.
        fs, data = tpch_tiny
        items = parse_table(fs, data, "lineitem")
        cutoff = datetime.date(1998, 9, 2)
        expected = sum(1 for i in items if i["l_shipdate"] <= cutoff)
        assert sum(row[-1] for row in result.rows) == expected

    def test_q1_aggregates_against_manual(self, engines, tpch_tiny):
        raw, _ = engines
        fs, data = tpch_tiny
        items = parse_table(fs, data, "lineitem")
        cutoff = datetime.date(1998, 9, 2)
        manual = {}
        for item in (i for i in items if i["l_shipdate"] <= cutoff):
            key = (item["l_returnflag"], item["l_linestatus"])
            bucket = manual.setdefault(key, [0.0, 0])
            bucket[0] += item["l_quantity"]
            bucket[1] += 1
        result = raw.query(tpch_query("q1"))
        for row in result.rows:
            key = (row[0], row[1])
            assert row[2] == pytest.approx(manual[key][0])
            assert row[-1] == manual[key][1]

    def test_q6_against_manual(self, engines, tpch_tiny):
        raw, _ = engines
        fs, data = tpch_tiny
        items = parse_table(fs, data, "lineitem")
        lo, hi = datetime.date(1994, 1, 1), datetime.date(1995, 1, 1)
        expected = sum(
            i["l_extendedprice"] * i["l_discount"] for i in items
            if lo <= i["l_shipdate"] < hi
            and 0.05 <= i["l_discount"] <= 0.07 and i["l_quantity"] < 24)
        got = raw.query(tpch_query("q6")).scalar()
        if expected == 0:
            assert got is None or got == pytest.approx(0.0)
        else:
            assert got == pytest.approx(expected)

    def test_q3_limit_and_order(self, engines):
        raw, _ = engines
        result = raw.query(tpch_query("q3"))
        assert len(result.rows) <= 10
        revenues = [row[1] for row in result.rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q4_counts_against_manual(self, engines, tpch_tiny):
        raw, _ = engines
        fs, data = tpch_tiny
        orders = parse_table(fs, data, "orders")
        items = parse_table(fs, data, "lineitem")
        late = {i["l_orderkey"] for i in items
                if i["l_commitdate"] < i["l_receiptdate"]}
        lo = datetime.date(1993, 7, 1)
        hi = datetime.date(1993, 10, 1)
        manual = {}
        for order in orders:
            if lo <= order["o_orderdate"] < hi and \
                    order["o_orderkey"] in late:
                manual[order["o_orderpriority"]] = manual.get(
                    order["o_orderpriority"], 0) + 1
        result = raw.query(tpch_query("q4"))
        assert dict(result.rows) == manual

    def test_q14_is_percentage(self, engines):
        raw, _ = engines
        value = raw.query(tpch_query("q14")).scalar()
        if value is not None:
            assert 0.0 <= value <= 100.0

    def test_warm_repeat_agrees_with_cold(self, engines):
        raw, _ = engines
        first = sorted(map(repr, raw.query(tpch_query("q12")).rows))
        second = sorted(map(repr, raw.query(tpch_query("q12")).rows))
        assert first == second

    def test_external_engine_agrees_on_single_table_queries(
            self, tpch_tiny):
        fs, data = tpch_tiny
        external = ExternalFilesDBMS(vfs=fs)
        for table, path in data.paths.items():
            external.register_csv(table, path, tpch_schema(table))
        raw = fresh_raw_tpch(tpch_tiny)
        for name in ("q1", "q6"):
            raw_rows = normalize(raw.query(tpch_query(name)).rows)
            ext_rows = normalize(external.query(tpch_query(name)).rows)
            assert raw_rows == ext_rows


class TestStatisticsEffect:
    def test_stats_change_q1_plan(self, tpch_tiny):
        # Figure 12's mechanism: with on-the-fly statistics the second
        # Q1 switches from sort- to hash-aggregation.
        with_stats = fresh_raw_tpch(
            tpch_tiny, PostgresRawConfig(enable_statistics=True))
        q1 = tpch_query("q1")
        first = with_stats.query(q1)
        second = with_stats.query(q1)
        def agg_strategy(plan):
            node = plan
            while node:
                if node["op"] == "Aggregate":
                    return node["strategy"]
                node = node.get("input")
            return None
        assert agg_strategy(first.plan) == "sort"
        assert agg_strategy(second.plan) == "hash"

        without = fresh_raw_tpch(
            tpch_tiny, PostgresRawConfig(enable_statistics=False))
        without.query(q1)
        later = without.query(q1)
        assert agg_strategy(later.plan) == "sort"

    def test_stats_improve_virtual_time(self, tpch_tiny):
        q1 = tpch_query("q1")
        with_stats = fresh_raw_tpch(
            tpch_tiny, PostgresRawConfig(enable_statistics=True))
        without = fresh_raw_tpch(
            tpch_tiny, PostgresRawConfig(enable_statistics=False))
        with_stats.query(q1)
        without.query(q1)
        warm_with = with_stats.query(q1).elapsed
        warm_without = without.query(q1).elapsed
        assert warm_with < warm_without
