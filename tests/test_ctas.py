"""CREATE TABLE AS SELECT: instant materialization through the heap
adapter.

CTAS runs the query through the normal planner (so it can itself be
routed to a rollup), infers a schema from the result values (falling
back to expression types for empty/all-NULL columns), and lands the
rows in a heap file like any loaded table — queryable immediately,
DESCRIBE-able, and DROP-able.
"""

from __future__ import annotations

import pytest

import repro
from repro import LoadedDBMS, PostgresRaw, VirtualFS
from repro.errors import CatalogError

from conftest import PEOPLE_CSV, people_schema


@pytest.fixture
def raw() -> PostgresRaw:
    fs = VirtualFS()
    fs.create("people.csv", PEOPLE_CSV)
    db = PostgresRaw(vfs=fs)
    db.register_csv("people", "people.csv", people_schema())
    return db


class TestCtasBasics:
    def test_roundtrip_preserves_rows_and_order(self, raw):
        direct = raw.query(
            "SELECT name, age FROM people WHERE age > 26 ORDER BY age")
        result = raw.query("CREATE TABLE adults AS "
                           "SELECT name, age FROM people WHERE age > 26 "
                           "ORDER BY age")
        assert result.rows == [("CREATE TABLE adults AS SELECT (3 rows)",)]
        # heap storage preserves the SELECT's output order
        assert raw.query("SELECT name, age FROM adults").rows == direct.rows

    def test_registered_as_heap(self, raw):
        raw.query("CREATE TABLE t2 AS SELECT id, name FROM people")
        info = raw.catalog.get("t2")
        assert info.format == "heap"
        show = raw.query("SHOW TABLES")
        assert ("t2", "heap", 2, info.path) in show.rows

    def test_inferred_types(self, raw):
        raw.query("CREATE TABLE summary AS "
                  "SELECT age, count(*) AS n, sum(height) AS h, "
                  "avg(height) AS a, min(name) AS who, max(birth) AS b "
                  "FROM people GROUP BY age")
        types = dict((name, dtype) for name, dtype, _null
                     in raw.query("DESCRIBE summary").rows)
        assert types["age"] == "BIGINT"  # int values widen to BIGINT
        assert types["n"] == "BIGINT"
        assert types["h"] == "FLOAT"
        assert types["a"] == "FLOAT"
        assert types["who"].startswith("VARCHAR")
        assert types["b"] == "DATE"

    def test_empty_result_falls_back_to_expression_types(self, raw):
        raw.query("CREATE TABLE none_found AS "
                  "SELECT name, age, count(*) AS n FROM people "
                  "WHERE age > 100 GROUP BY name, age")
        types = dict((name, dtype) for name, dtype, _null
                     in raw.query("DESCRIBE none_found").rows)
        assert types["n"] == "BIGINT"  # count() even with no rows
        assert types["age"] == "INTEGER"  # source column type
        assert raw.query("SELECT count(*) FROM none_found").scalar() == 0

    def test_queryable_with_predicates_and_aggregates(self, raw):
        raw.query("CREATE TABLE t AS SELECT name, age FROM people")
        assert raw.query(
            "SELECT count(*) FROM t WHERE age = 25").scalar() == 2
        assert raw.query(
            "SELECT name FROM t WHERE age > 30").rows == [("carol",)]

    def test_duplicate_name_rejected_before_side_effects(self, raw):
        with pytest.raises(CatalogError, match="already registered"):
            raw.query("CREATE TABLE people AS SELECT id FROM people")

    def test_if_not_exists_skips(self, raw):
        raw.query("CREATE TABLE t AS SELECT id FROM people")
        result = raw.query(
            "CREATE TABLE IF NOT EXISTS t AS SELECT name FROM people")
        assert "skipped" in result.rows[0][0]
        assert raw.query("DESCRIBE t").rows[0][0] == "id"

    def test_duplicate_result_columns_need_aliases(self, raw):
        with pytest.raises(CatalogError, match="alias"):
            raw.query("CREATE TABLE t AS SELECT age, age FROM people")

    def test_drop_ctas_table(self, raw):
        raw.query("CREATE TABLE t AS SELECT id FROM people")
        path = raw.catalog.get("t").path
        assert raw.vfs.exists(path)
        raw.query("DROP TABLE t")
        assert not raw.catalog.has("t")
        with pytest.raises(CatalogError):
            raw.query("SELECT * FROM t")

    def test_session_path(self, raw):
        session = repro.connect(engine=raw)
        session.execute("CREATE TABLE t AS SELECT name FROM people "
                        "WHERE id < 3")
        cur = session.execute("SELECT count(*) FROM t")
        assert cur.fetchone() == (2,)
        session.close()


class TestCtasEngines:
    def test_loaded_engine_reuses_buffer_pool(self):
        fs = VirtualFS()
        fs.create("people.csv", PEOPLE_CSV)
        db = LoadedDBMS(vfs=fs)
        db.load_csv("people", "people.csv", people_schema())
        db.query("CREATE TABLE t AS SELECT name, age FROM people")
        assert db.query("SELECT count(*) FROM t").scalar() == 5
        # the engine's own pool served the materialization
        assert db.materialization_pool() is db.pool

    def test_raw_engine_gets_private_pool(self, raw):
        raw.query("CREATE TABLE t AS SELECT name FROM people")
        assert not hasattr(raw, "pool")  # PostgresRaw stays bufferless
        assert raw.materialization_pool() is raw.materialization_pool()

    def test_ctas_of_aggregate_routes_through_rollup(self, raw):
        raw.query("SELECT id, name, age, height, birth FROM people")
        expected = raw.query(
            "SELECT age, count(*) AS n FROM people GROUP BY age")
        raw.query("CREATE ROLLUP by_age ON people (age) AGG (count(*))")
        raw.query("CREATE TABLE age_counts AS "
                  "SELECT age, count(*) AS n FROM people GROUP BY age")
        assert raw.counters().get("rollup_hits") == 1
        assert raw.query(
            "SELECT age, n FROM age_counts").rows == expected.rows
