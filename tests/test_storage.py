"""Tests for slotted pages, heap files, buffer pool, and record codec."""

import datetime

import pytest

from repro.errors import PageFormatError, StorageError
from repro.simcost.clock import CostEvent
from repro.simcost.model import CostModel
from repro.sql.catalog import Schema
from repro.sql.datatypes import BOOLEAN, DATE, FLOAT, INTEGER, varchar
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, HeapWriter
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.record import RecordCodec
from repro.storage.vfs import VirtualFS


class TestSlottedPage:
    def test_insert_and_get(self):
        page = SlottedPage()
        slot = page.insert(b"hello")
        assert page.get(slot) == b"hello"
        assert page.tuple_count == 1

    def test_multiple_records_in_slot_order(self):
        page = SlottedPage()
        records = [f"record-{i}".encode() for i in range(10)]
        for record in records:
            page.insert(record)
        assert list(page.records()) == records

    def test_roundtrip_through_bytes(self):
        page = SlottedPage()
        page.insert(b"aa")
        page.insert(b"bb" * 100)
        restored = SlottedPage(page.to_bytes())
        assert list(restored.records()) == [b"aa", b"bb" * 100]

    def test_page_is_exactly_page_size(self):
        assert len(SlottedPage().to_bytes()) == PAGE_SIZE

    def test_wrong_size_rejected(self):
        with pytest.raises(PageFormatError):
            SlottedPage(b"\x00" * 100)

    def test_overflow_rejected(self):
        page = SlottedPage()
        with pytest.raises(PageFormatError):
            page.insert(b"x" * PAGE_SIZE)

    def test_fills_until_full_then_rejects(self):
        page = SlottedPage()
        record = b"r" * 100
        count = 0
        while page.has_room(len(record)):
            page.insert(record)
            count += 1
        assert count > 70  # ~8k / (100 + 4 slot)
        with pytest.raises(PageFormatError):
            page.insert(record)

    def test_slot_out_of_range(self):
        page = SlottedPage()
        page.insert(b"x")
        with pytest.raises(PageFormatError):
            page.get(1)
        with pytest.raises(PageFormatError):
            page.get(-1)

    def test_free_space_decreases(self):
        page = SlottedPage()
        before = page.free_space
        page.insert(b"x" * 50)
        assert page.free_space < before

    def test_empty_record_allowed(self):
        page = SlottedPage()
        slot = page.insert(b"")
        assert page.get(slot) == b""


class TestRecordCodec:
    def schema(self):
        return Schema([
            ("i", INTEGER), ("f", FLOAT), ("s", varchar()),
            ("d", DATE), ("b", BOOLEAN),
        ])

    def test_roundtrip(self):
        codec = RecordCodec(self.schema())
        row = (42, 3.25, "text", datetime.date(2001, 5, 20), True)
        assert codec.decode(codec.encode(row)) == row

    def test_nulls_roundtrip(self):
        codec = RecordCodec(self.schema())
        row = (None, None, None, None, None)
        assert codec.decode(codec.encode(row)) == row

    def test_mixed_nulls(self):
        codec = RecordCodec(self.schema())
        row = (7, None, "x", None, False)
        assert codec.decode(codec.encode(row)) == row

    def test_negative_int_and_date_before_epoch(self):
        codec = RecordCodec(self.schema())
        row = (-10 ** 12, -0.5, "", datetime.date(1955, 2, 1), False)
        assert codec.decode(codec.encode(row)) == row

    def test_unicode_string(self):
        codec = RecordCodec(self.schema())
        row = (1, 1.0, "naïve-ütf", datetime.date(2020, 1, 1), True)
        assert codec.decode(codec.encode(row)) == row

    def test_arity_mismatch_rejected(self):
        codec = RecordCodec(self.schema())
        with pytest.raises(StorageError):
            codec.encode((1, 2.0))

    def test_oversized_string_rejected(self):
        codec = RecordCodec(Schema([("s", varchar())]))
        with pytest.raises(StorageError):
            codec.encode(("x" * 70000,))

    def test_encoded_width_matches_encode(self):
        codec = RecordCodec(self.schema())
        for row in [(1, 2.0, "abc", datetime.date(2000, 1, 1), True),
                    (None, 2.0, "", None, None)]:
            assert codec.encoded_width(row) == len(codec.encode(row))


class TestHeapFile:
    def write_rows(self, vfs, model, n=500):
        schema = Schema([("id", INTEGER), ("name", varchar())])
        codec = RecordCodec(schema)
        with HeapWriter(vfs, "t.heap", model) as writer:
            for i in range(n):
                writer.append(codec.encode((i, f"name-{i}")))
        return schema, codec

    def test_write_read_roundtrip(self):
        vfs = VirtualFS()
        model = CostModel()
        schema, codec = self.write_rows(vfs, model, 500)
        heap = HeapFile(vfs, "t.heap")
        pool = BufferPool(vfs, model)
        rows = [codec.decode(r) for r in heap.scan_records(pool)]
        assert rows == [(i, f"name-{i}") for i in range(500)]
        assert heap.record_count(pool) == 500

    def test_spans_multiple_pages(self):
        vfs = VirtualFS()
        model = CostModel()
        self.write_rows(vfs, model, 2000)
        heap = HeapFile(vfs, "t.heap")
        assert heap.num_pages > 1

    def test_writes_are_charged(self):
        vfs = VirtualFS()
        model = CostModel()
        self.write_rows(vfs, model, 100)
        assert model.count(CostEvent.DISK_WRITE) >= PAGE_SIZE

    def test_closed_writer_rejects_appends(self):
        vfs = VirtualFS()
        writer = HeapWriter(vfs, "t.heap", CostModel())
        writer.close()
        with pytest.raises(StorageError):
            writer.append(b"x")

    def test_close_idempotent_and_returns_count(self):
        vfs = VirtualFS()
        writer = HeapWriter(vfs, "t.heap", CostModel())
        writer.append(b"abc")
        assert writer.close() == 1
        assert writer.close() == 1

    def test_oversized_record_rejected(self):
        vfs = VirtualFS()
        writer = HeapWriter(vfs, "t.heap", CostModel())
        with pytest.raises(PageFormatError):
            writer.append(b"x" * PAGE_SIZE)

    def test_unaligned_heap_rejected(self):
        vfs = VirtualFS()
        vfs.create("bad.heap", b"x" * 100)
        with pytest.raises(StorageError):
            HeapFile(vfs, "bad.heap").num_pages


class TestBufferPool:
    def test_hit_avoids_disk(self):
        vfs = VirtualFS()
        model = CostModel()
        with HeapWriter(vfs, "t.heap", model) as writer:
            writer.append(b"row")
        pool = BufferPool(vfs, model, capacity_pages=4)
        pool.get_page("t.heap", 0)
        read_after_miss = (model.count(CostEvent.DISK_READ_COLD)
                           + model.count(CostEvent.DISK_READ_WARM))
        pool.get_page("t.heap", 0)
        read_after_hit = (model.count(CostEvent.DISK_READ_COLD)
                          + model.count(CostEvent.DISK_READ_WARM))
        assert read_after_hit == read_after_miss
        assert pool.hits == 1 and pool.misses == 1

    def test_eviction_at_capacity(self):
        vfs = VirtualFS()
        model = CostModel()
        with HeapWriter(vfs, "t.heap", model) as writer:
            for i in range(4000):
                writer.append(b"r" * 200)
        pool = BufferPool(vfs, model, capacity_pages=2)
        heap = HeapFile(vfs, "t.heap")
        assert heap.num_pages >= 3
        for i in range(heap.num_pages):
            pool.get_page("t.heap", i)
        pool.get_page("t.heap", 0)  # was evicted: miss again
        assert pool.misses == heap.num_pages + 1

    def test_invalidate(self):
        vfs = VirtualFS()
        model = CostModel()
        with HeapWriter(vfs, "t.heap", model) as writer:
            writer.append(b"row")
        pool = BufferPool(vfs, model)
        pool.get_page("t.heap", 0)
        pool.invalidate("t.heap")
        pool.get_page("t.heap", 0)
        assert pool.misses == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(VirtualFS(), CostModel(), capacity_pages=0)

    def test_short_page_read_rejected(self):
        vfs = VirtualFS()
        vfs.create("bad.heap", b"x" * (PAGE_SIZE // 2))
        pool = BufferPool(vfs, CostModel())
        with pytest.raises(StorageError):
            pool.get_page("bad.heap", 0)
