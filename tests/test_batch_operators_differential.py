"""Differential fuzz for the columnar operator tree (PR 3).

PR 1 proved the batch *scan* against the scalar oracle; these tests
prove the operators above it — GROUP BY aggregation (hash and sort
strategies), hash joins, and ORDER BY — by running random workloads on
three engines (batch, scalar, loaded) and demanding:

* **identical result sequences** between batch and scalar — not just
  identical sets: group emission order, sort tie-breaking and float
  accumulation order are all replicated exactly by the vectorized
  paths;
* **identical positional-map and cache contents** after every query
  (the PR 1 contract, now exercised through joins and aggregates);
* **zero row materialization** on the batch path for vectorizable
  plans (``rows_materialized == 0`` upstream of final assembly);
* **typed cache round-trips**: dtype-tagged blocks written by a cold
  scan serve warm scans as arrays with dtype preserved, and values
  (dates included) survive the round trip exactly;
* **vectorized parameter predicates**: ``?`` placeholders no longer
  disable ``vector_fn`` — prepared statements re-bind and stay on the
  fully columnar path.
"""

import random

import numpy as np
import pytest

from repro import (
    DATE,
    FLOAT,
    INTEGER,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)
from repro.formats.csvfmt import write_csv
from repro.sql.operators import ScanOp
from repro.sql.parser import parse
from repro.sql.planner import Planner
from repro.workloads.micro import generate_micro_csv, micro_schema

from test_batch_differential import (
    assert_structures_match,
    build_engines,
    random_schema,
    random_table,
)


def _clean(value):
    """Normalize the one representational wobble exact comparison can't
    see past: IEEE negative zero (scalar accumulators can preserve the
    sign bit where array sentinels fold it)."""
    if isinstance(value, float) and value == 0.0:
        return 0.0
    return value


def rows_of(result):
    return [tuple(_clean(v) for v in row) for row in result.rows]


def normalized(result):
    return sorted(map(repr, rows_of(result)))


# ---------------------------------------------------------------------------
# Random operator-level workloads
# ---------------------------------------------------------------------------
def random_agg_query(rng: random.Random, schema: Schema) -> str:
    columns = schema.columns
    numeric = [c.name for c in columns
               if c.dtype.family in ("int", "float")]
    group_col = rng.choice([c.name for c in columns])
    aggs = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.random()
        if kind < 0.2 or not numeric:
            aggs.append("count(*)")
        else:
            func = rng.choice(["sum", "avg", "min", "max", "count"])
            arg = rng.choice(numeric)
            if rng.random() < 0.3:
                arg = f"{arg} * 2" if rng.random() < 0.5 else f"{arg} + 1"
            aggs.append(f"{func}({arg})")
    sql = f"SELECT {group_col}, {', '.join(aggs)} FROM t"
    if numeric and rng.random() < 0.5:
        sql += f" WHERE {rng.choice(numeric)} < {rng.randint(-2000, 8000)}"
    sql += f" GROUP BY {group_col}"
    if rng.random() < 0.4:
        sql += f" ORDER BY {group_col}"
    return sql


def random_order_query(rng: random.Random, schema: Schema) -> str:
    columns = [c.name for c in schema.columns]
    keys = rng.sample(columns, rng.randint(1, min(3, len(columns))))
    order = ", ".join(
        f"{k} {'DESC' if rng.random() < 0.5 else 'ASC'}" for k in keys)
    sql = f"SELECT {', '.join(columns)} FROM t ORDER BY {order}"
    if rng.random() < 0.4:
        sql += f" LIMIT {rng.randint(0, 40)}"
    return sql


class TestAggregateDifferentialFuzz:
    @pytest.mark.parametrize("seed", range(10))
    def test_group_by_aggregates_agree(self, seed):
        rng = random.Random(31000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        block_size = rng.choice([1, 3, 8, 17, 64])
        raw_batch, raw_scalar, loaded = build_engines(schema, rows,
                                                      block_size)
        for qno in range(5):
            sql = random_agg_query(rng, schema)
            res_batch = raw_batch.query(sql)
            res_scalar = raw_scalar.query(sql)
            res_loaded = loaded.query(sql)
            # Exact sequence parity: emission order and float
            # accumulation order are replicated, not just the set.
            assert rows_of(res_batch) == rows_of(res_scalar), \
                f"seed={seed} q{qno}: batch != scalar for {sql!r}"
            assert normalized(res_batch) == normalized(res_loaded), \
                f"seed={seed} q{qno}: batch != loaded for {sql!r}"
            assert_structures_match(raw_batch, raw_scalar)

    @pytest.mark.parametrize("seed", range(8))
    def test_order_by_exact_sequence(self, seed):
        rng = random.Random(32000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        raw_batch, raw_scalar, loaded = build_engines(
            schema, rows, rng.choice([2, 5, 16]))
        for _ in range(4):
            sql = random_order_query(rng, schema)
            res_batch = raw_batch.query(sql)
            res_scalar = raw_scalar.query(sql)
            res_loaded = loaded.query(sql)
            # ORDER BY must agree on the full sequence — NULL placement,
            # per-key direction and stable tie order included.
            assert rows_of(res_batch) == rows_of(res_scalar), sql
            assert rows_of(res_batch) == rows_of(res_loaded), sql
            assert_structures_match(raw_batch, raw_scalar)


# ---------------------------------------------------------------------------
# Hash joins
# ---------------------------------------------------------------------------
def build_join_engines(rng: random.Random, key_family: str = "int"):
    if key_family == "int":
        key_value = lambda: str(rng.randint(0, 12))
        key_type = INTEGER
    else:
        key_value = lambda: rng.choice("abcdefgh")
        key_type = varchar()
    left_schema = Schema([("lk", key_type), ("lv", INTEGER),
                          ("ls", varchar())])
    right_schema = Schema([("rk", key_type), ("rv", FLOAT)])
    left_rows = [[key_value() if rng.random() > 0.1 else "",
                  str(rng.randint(-100, 100)),
                  rng.choice("xyzw")] for _ in range(rng.randint(0, 80))]
    right_rows = [[key_value() if rng.random() > 0.1 else "",
                   f"{rng.uniform(-10, 10):.3f}"]
                  for _ in range(rng.randint(0, 40))]
    engines = []
    for batch in (True, False):
        vfs = VirtualFS()
        vfs.create("l.csv", write_csv(left_rows))
        vfs.create("r.csv", write_csv(right_rows))
        db = PostgresRaw(config=PostgresRawConfig(
            row_block_size=rng.choice([3, 8, 32]), batch_mode=batch),
            vfs=vfs)
        db.register_csv("l", "l.csv", left_schema)
        db.register_csv("r", "r.csv", right_schema)
        engines.append(db)
    return engines


class TestHashJoinDifferentialFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_int_key_joins_agree(self, seed):
        rng = random.Random(33000 + seed)
        db_batch, db_scalar = build_join_engines(rng, "int")
        queries = [
            "SELECT lv, rv FROM l, r WHERE lk = rk",
            "SELECT lv, rv FROM l, r WHERE lk = rk AND lv > 0",
            "SELECT ls, count(*), sum(rv) FROM l, r WHERE lk = rk "
            "GROUP BY ls",
            "SELECT lv, rv FROM l, r WHERE lk = rk ORDER BY lv, rv "
            "LIMIT 25",
        ]
        for sql in queries:
            res_batch = db_batch.query(sql)
            res_scalar = db_scalar.query(sql)
            assert rows_of(res_batch) == rows_of(res_scalar), \
                f"seed={seed}: {sql!r}"

    @pytest.mark.parametrize("seed", range(6))
    def test_string_key_joins_agree(self, seed):
        rng = random.Random(34000 + seed)
        db_batch, db_scalar = build_join_engines(rng, "str")
        for sql in ("SELECT lv, rv FROM l, r WHERE lk = rk",
                    "SELECT lk, count(*) FROM l, r WHERE lk = rk "
                    "GROUP BY lk ORDER BY lk"):
            assert rows_of(db_batch.query(sql)) == \
                rows_of(db_scalar.query(sql)), f"seed={seed}: {sql!r}"


# ---------------------------------------------------------------------------
# The acceptance contract: fully columnar plans materialize no rows
# ---------------------------------------------------------------------------
def micro_engine(batch: bool, rows: int = 400, attrs: int = 6,
                 extra_table: bool = False) -> PostgresRaw:
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", rows, attrs, seed=5, value_range=40)
    db = PostgresRaw(config=PostgresRawConfig(batch_mode=batch,
                                              row_block_size=64), vfs=vfs)
    db.register_csv("m", "m.csv", micro_schema(attrs))
    if extra_table:
        payload = b"\n".join(f"{i},{i * 7}".encode() for i in range(40))
        vfs.create("d.csv", payload + b"\n")
        db.register_csv("d", "d.csv",
                        Schema([("k", INTEGER), ("w", INTEGER)]))
    return db


class TestZeroRowMaterialization:
    def test_group_by_aggregate_is_fully_columnar(self):
        db = micro_engine(batch=True)
        oracle = micro_engine(batch=False)
        sql = ("SELECT a1, sum(a2), count(*), avg(a3), min(a4), max(a5) "
               "FROM m WHERE a2 < 30 GROUP BY a1")
        for _ in range(2):  # cold (streaming) and warm (indexed+cache)
            result = db.query(sql)
            expected = oracle.query(sql)
            assert result.rows == expected.rows
            assert result.rows_materialized == 0
        assert db.rows_materialized == 0

    def test_hash_join_is_fully_columnar(self):
        db = micro_engine(batch=True, extra_table=True)
        oracle = micro_engine(batch=False, extra_table=True)
        sql = ("SELECT a2, w FROM m, d WHERE a1 = k "
               "ORDER BY a2 DESC, w LIMIT 30")
        for _ in range(2):
            result = db.query(sql)
            expected = oracle.query(sql)
            assert result.rows == expected.rows
            assert result.rows_materialized == 0

    def test_scalar_mode_reports_zero_too(self):
        # The counter tracks batch->row transpositions; the scalar
        # pipeline never transposes batches at all.
        db = micro_engine(batch=False)
        db.query("SELECT a1, count(*) FROM m GROUP BY a1")
        assert db.rows_materialized == 0

    def test_row_fallbacks_are_counted(self):
        # count(DISTINCT ...) is not vectorized: the aggregate falls
        # back to the row path, which transposes the scan's batches.
        db = micro_engine(batch=True)
        result = db.query("SELECT count(DISTINCT a1) FROM m")
        assert result.rows_materialized == 400
        assert result.scalar() == 40


# ---------------------------------------------------------------------------
# Typed cache round trip (dtype preserved cold -> warm)
# ---------------------------------------------------------------------------
class TestTypedCacheRoundTrip:
    @pytest.mark.parametrize("seed", range(6))
    def test_dtype_preserved_and_values_exact(self, seed):
        rng = random.Random(36000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        raw_batch, raw_scalar, _ = build_engines(schema, rows, 16)
        all_cols = ", ".join(c.name for c in schema.columns)
        sql = f"SELECT {all_cols} FROM t"
        cold = raw_batch.query(sql)
        cold_scalar = raw_scalar.query(sql)
        assert rows_of(cold) == rows_of(cold_scalar)

        expected_dtype = {"int": np.int64, "float": np.float64,
                          "date": np.int32, "bool": np.bool_}
        cache = raw_batch.cache_of("t")
        for (attr, _block), block in cache._blocks.items():
            family = schema.columns[attr].dtype.family
            typed = block.typed_data()
            if family in expected_dtype:
                data, nulls = typed
                assert data.dtype == expected_dtype[family], \
                    f"attr {attr} family {family}"
                assert len(nulls) == len(block.mask)
            else:
                assert typed is None

        warm = raw_batch.query(sql)
        warm_scalar = raw_scalar.query(sql)
        assert rows_of(warm) == rows_of(cold)
        assert rows_of(warm) == rows_of(warm_scalar)
        assert_structures_match(raw_batch, raw_scalar)

    def test_warm_scan_hands_typed_arrays_to_batches(self):
        db = micro_engine(batch=True)
        access = db.catalog.get("m").access
        list(access.scan_batches([0, 2], None))          # cold: populate
        warm = list(access.scan_batches([0, 2], None))   # warm: cache-fed
        assert warm
        for batch in warm:
            for column in batch.columns:
                assert column.dtype == np.int64
        # And the values are exactly the file's.
        values = [v for batch in warm for v in batch.column_values(0)]
        truth = [int(line.split(b",")[0]) for line in
                 db.vfs.read_bytes("m.csv").splitlines()]
        assert values == truth

    def test_date_blocks_round_trip_as_day_numbers(self):
        schema = Schema([("d", DATE), ("x", INTEGER)])
        rows = [["2001-02-03", "1"], ["1999-12-31", "2"],
                ["", "3"], ["2030-06-15", "4"]]
        raw_batch, raw_scalar, _ = build_engines(schema, rows, 8)
        sql = "SELECT d, x FROM t"
        cold = raw_batch.query(sql)
        warm = raw_batch.query(sql)
        assert cold.rows == warm.rows == raw_scalar.query(sql).rows
        block = raw_batch.cache_of("t").get(0, 0)
        data, nulls = block.typed_data()
        assert data.dtype == np.int32
        assert bool(nulls.any())  # the empty field cached as NULL
        # Warm date *predicates* run on the day-number array.
        pred_sql = "SELECT x FROM t WHERE d >= DATE '2000-01-01'"
        assert raw_batch.query(pred_sql).rows == \
            raw_scalar.query(pred_sql).rows


# ---------------------------------------------------------------------------
# Vectorized parameter predicates (ROADMAP: "?" no longer disables
# vector_fn)
# ---------------------------------------------------------------------------
def _find_scan(op):
    while not isinstance(op, ScanOp):
        op = getattr(op, "child", None) or getattr(op, "left", None)
    return op


class TestParameterVectorization:
    def test_parameter_predicate_compiles_to_vector_fn(self):
        db = micro_engine(batch=True)
        select = parse("SELECT a1 FROM m WHERE a2 < ? AND a3 BETWEEN ? "
                       "AND ?")
        planned = Planner(db.catalog, db.model).plan(select)
        scan = _find_scan(planned.root)
        assert scan.predicate is not None
        assert scan.predicate.vector_fn is not None

    def test_prepared_reexecution_stays_columnar(self):
        db = micro_engine(batch=True)
        oracle = micro_engine(batch=False)
        session = db.connect()
        stmt = session.prepare("SELECT a1, count(*) FROM m WHERE a2 < ? "
                               "GROUP BY a1")
        oracle_session = oracle.connect()
        oracle_stmt = oracle_session.prepare(
            "SELECT a1, count(*) FROM m WHERE a2 < ? GROUP BY a1")
        for bind in (10, 25, 0, 40):
            before = db.rows_materialized
            got = stmt.execute((bind,)).fetchall()
            want = oracle_stmt.execute((bind,)).fetchall()
            assert got == want, f"bind={bind}"
            # Re-binding rebuilt the mask; no row fallback happened.
            assert db.rows_materialized == before, f"bind={bind}"

    def test_parameter_mask_rebuilds_per_bind(self):
        db = micro_engine(batch=True)
        session = db.connect()
        stmt = session.prepare("SELECT count(*) FROM m WHERE a1 = ?")
        counts = {}
        for bind in (3, 17, 3):
            counts.setdefault(bind, []).append(
                stmt.execute((bind,)).fetchone()[0])
        assert counts[3][0] == counts[3][1]  # deterministic per bind
        total = db.query("SELECT count(*) FROM m").scalar()
        assert 0 < counts[3][0] < total

    def test_null_bind_matches_scalar_semantics(self):
        db = micro_engine(batch=True)
        oracle = micro_engine(batch=False)
        got = db.connect().execute(
            "SELECT count(*) FROM m WHERE a1 < ?", (None,)).fetchall()
        want = oracle.connect().execute(
            "SELECT count(*) FROM m WHERE a1 < ?", (None,)).fetchall()
        assert got == want == [(0,)]


# ---------------------------------------------------------------------------
# Scalar-parity edge cases caught by review (vectorized value exprs)
# ---------------------------------------------------------------------------
class TestVectorizedValueEdgeCases:
    def _pair(self, payload, schema):
        out = []
        for batch in (True, False):
            vfs = VirtualFS()
            vfs.create("t.csv", payload)
            db = PostgresRaw(config=PostgresRawConfig(batch_mode=batch),
                             vfs=vfs)
            db.register_csv("t", "t.csv", schema)
            out.append(db)
        return out

    def test_division_by_zero_raises_like_scalar(self):
        from repro.errors import ExecutionError

        db_batch, db_scalar = self._pair(
            b"1,0\n2,1\n", Schema([("a", INTEGER), ("b", INTEGER)]))
        for db in (db_batch, db_scalar):
            with pytest.raises(ExecutionError, match="division by zero"):
                db.query("SELECT sum(a / b) FROM t GROUP BY a")

    def test_interval_arithmetic_falls_back_to_rows(self):
        db_batch, db_scalar = self._pair(
            b"2020-01-15,1\n2021-03-10,1\n",
            Schema([("d", DATE), ("a", INTEGER)]))
        sql = "SELECT min(d + INTERVAL '1' MONTH) FROM t GROUP BY a"
        assert db_batch.query(sql).rows == db_scalar.query(sql).rows

    def test_nan_min_max_first_value_semantics(self):
        payload = b"1,2.0\n1,nan\n1,1.0\n2,nan\n2,3.0\n"
        db_batch, db_scalar = self._pair(
            payload, Schema([("a", INTEGER), ("f", FLOAT)]))
        sql = "SELECT a, min(f), max(f) FROM t GROUP BY a ORDER BY a"
        assert repr(db_batch.query(sql).rows) == \
            repr(db_scalar.query(sql).rows)

    def test_int_sum_beyond_int64_matches_python_ints(self):
        big = 6_000_000_000_000_000_000  # 2 * big overflows int64
        payload = (f"1,{big}\n1,{big}\n2,5\n".encode())
        db_batch, db_scalar = self._pair(
            payload, Schema([("g", INTEGER), ("v", INTEGER)]))
        sql = "SELECT g, sum(v) FROM t GROUP BY g ORDER BY g"
        got = db_batch.query(sql).rows
        assert got == db_scalar.query(sql).rows
        assert got[0][1] == 2 * big  # exact, no wraparound

    def test_nan_order_by_matches_scalar_sequence(self):
        payload = b"1,1.5\n2,nan\n3,2.5\n4,nan\n5,0.5\n"
        db_batch, db_scalar = self._pair(
            payload, Schema([("i", INTEGER), ("f", FLOAT)]))
        for sql in ("SELECT i FROM t ORDER BY f",
                    "SELECT i FROM t ORDER BY f DESC"):
            assert db_batch.query(sql).rows == \
                db_scalar.query(sql).rows, sql

    def test_int_beyond_int64_survives_the_typed_cache(self):
        # The scan's Python parse fallback produces true bigints; the
        # typed cache must demote the block rather than overflow.
        big = 99999999999999999999999999
        payload = f"1,{big}\n2,7\n".encode()
        db_batch, db_scalar = self._pair(
            payload, Schema([("a", INTEGER), ("v", INTEGER)]))
        sql = "SELECT a, v FROM t ORDER BY a"
        for db in (db_batch, db_scalar):
            assert db.query(sql).rows == [(1, big), (2, 7)]
            assert db.query(sql).rows == [(1, big), (2, 7)]  # warm

    def test_session_results_report_rows_materialized(self):
        vfs = VirtualFS()
        generate_micro_csv(vfs, "m.csv", 50, 3, seed=1, value_range=9)
        db = PostgresRaw(vfs=vfs)
        db.register_csv("m", "m.csv", micro_schema(3))
        session = db.connect()
        columnar = session.query("SELECT a1, count(*) FROM m GROUP BY a1")
        assert columnar.rows_materialized == 0
        # A computed projection forces the row fallback — the session
        # surface must report it, not just the legacy engine.query path.
        fallback = session.query("SELECT a1 * 2 + a2 FROM m")
        assert fallback.rows_materialized == 50

    def test_nan_group_keys_stay_distinct(self):
        # Python dicts key each freshly parsed nan separately; the
        # factorizer must not collapse them the way np.unique would.
        payload = b"nan,1\nnan,2\n1.0,3\n"
        db_batch, db_scalar = self._pair(
            payload, Schema([("f", FLOAT), ("x", INTEGER)]))
        sql = "SELECT f, count(*), sum(x) FROM t GROUP BY f"
        got = db_batch.query(sql).rows
        assert repr(got) == repr(db_scalar.query(sql).rows)
        assert len(got) == 3  # two nan groups plus 1.0


# ---------------------------------------------------------------------------
# Widened predicate shapes: OR / IN / string equality / dates
# ---------------------------------------------------------------------------
class TestWidenedVectorizerShapes:
    @pytest.mark.parametrize("sql", [
        "SELECT a1 FROM m WHERE a2 < 10 OR a3 > 30",
        "SELECT a1 FROM m WHERE (a2 < 10 AND a4 > 5) OR a3 = 7",
        "SELECT a1 FROM m WHERE a2 IN (1, 2, 3, 30)",
        "SELECT a1 FROM m WHERE a2 NOT IN (1, 2, 3)",
        "SELECT a1 FROM m WHERE a2 NOT BETWEEN 5 AND 35",
    ])
    def test_or_in_shapes_match_scalar(self, sql):
        db = micro_engine(batch=True)
        oracle = micro_engine(batch=False)
        assert rows_of(db.query(sql)) == rows_of(oracle.query(sql))
        # Pushed single-table predicates of these shapes vectorize.
        select = parse(sql)
        scan = _find_scan(Planner(db.catalog, db.model).plan(select).root)
        assert scan.predicate.vector_fn is not None

    def test_string_equality_and_dates(self):
        schema = Schema([("s", varchar()), ("d", DATE), ("x", INTEGER)])
        rows = [["abc", "2001-01-01", "1"], ["", "2002-02-02", "2"],
                ["abc", "", "3"], ["zz z", "2003-03-03", "4"]]
        raw_batch, raw_scalar, loaded = build_engines(schema, rows, 4)
        queries = [
            "SELECT x FROM t WHERE s = 'abc'",
            "SELECT x FROM t WHERE s <> 'abc'",
            "SELECT x FROM t WHERE s IN ('abc', 'zz z')",
            "SELECT x FROM t WHERE d > DATE '2001-06-01'",
            "SELECT x FROM t WHERE d BETWEEN DATE '2001-01-01' AND "
            "DATE '2002-12-31'",
            "SELECT x FROM t WHERE d IS NULL",
            "SELECT x FROM t WHERE d IS NOT NULL AND s = 'abc'",
        ]
        for sql in queries:
            assert normalized(raw_batch.query(sql)) == \
                normalized(raw_scalar.query(sql)) == \
                normalized(loaded.query(sql)), sql
            assert_structures_match(raw_batch, raw_scalar)
