"""Tests for RawCsvAccess — the in-situ scan and its mechanisms (§4).

These tests assert the paper's *mechanisms* as exact counter values:
selective tokenizing touches fewer characters, the positional map
eliminates re-tokenization, the cache eliminates file access, selective
parsing converts SELECT attributes only for qualifying tuples.
"""

import pytest

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.simcost.clock import CostEvent
from repro.sql.scanapi import ScanPredicate
from repro.workloads.micro import generate_micro_csv, micro_schema

ROWS = 300
ATTRS = 12
BLOCK = 64


def make_engine(**config_kwargs):
    vfs = VirtualFS()
    generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=11)
    config = PostgresRawConfig(row_block_size=BLOCK, **config_kwargs)
    db = PostgresRaw(config=config, vfs=vfs)
    db.register_csv("m", "m.csv", micro_schema(ATTRS))
    return db, db.catalog.get("m").access


def ground_truth(vfs, path="m.csv"):
    rows = []
    for line in vfs.read_bytes(path).decode().splitlines():
        rows.append([int(v) for v in line.split(",")])
    return rows


def predicate_lt(attr, threshold):
    return ScanPredicate(
        attrs=[attr],
        fn=lambda values, a=attr, t=threshold: values[a] < t,
        n_terms=1)


class TestCorrectness:
    def test_full_projection_matches_ground_truth(self):
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        got = list(access.scan(list(range(ATTRS)), None))
        assert got == [tuple(row) for row in truth]

    def test_subset_projection(self):
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        got = list(access.scan([3, 7], None))
        assert got == [(row[3], row[7]) for row in truth]

    def test_projection_order_respected(self):
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        got = list(access.scan([7, 3], None))
        assert got == [(row[7], row[3]) for row in truth]

    def test_predicate_filters(self):
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        threshold = 500_000_000
        got = list(access.scan([1], predicate_lt(0, threshold)))
        assert got == [(row[1],) for row in truth if row[0] < threshold]

    def test_repeated_scans_identical(self):
        # First scan streams, later scans run over the indexed region.
        db, access = make_engine()
        runs = [list(access.scan([2, 9], None)) for _ in range(4)]
        assert runs[0] == runs[1] == runs[2] == runs[3]

    def test_alternating_attribute_sets(self):
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        for attrs in ([0, 5], [11], [4, 2, 8], [5, 0], [7]):
            got = list(access.scan(attrs, None))
            assert got == [tuple(row[a] for a in attrs) for row in truth]

    def test_predicate_after_warm_cache(self):
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        threshold = 300_000_000
        list(access.scan([0, 4], None))  # warm cache for attrs 0 and 4
        got = list(access.scan([4], predicate_lt(0, threshold)))
        assert got == [(row[4],) for row in truth if row[0] < threshold]

    def test_abandoned_scan_then_full_scan(self):
        # A LIMIT-style abandoned generator leaves a partial map; the
        # next scan must still produce the complete correct answer.
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        gen = access.scan([1], None)
        for _ in range(10):
            next(gen)
        gen.close()
        assert access.row_count is None
        got = list(access.scan([1], None))
        assert got == [(row[1],) for row in truth]
        assert access.row_count == ROWS

    def test_empty_file(self):
        vfs = VirtualFS()
        vfs.create("e.csv", b"")
        db = PostgresRaw(vfs=vfs)
        db.register_csv("e", "e.csv", micro_schema(3))
        access = db.catalog.get("e").access
        assert list(access.scan([0], None)) == []
        assert access.row_count == 0

    def test_unterminated_last_line(self):
        vfs = VirtualFS()
        vfs.create("u.csv", b"1,2\n3,4")  # no trailing newline
        db = PostgresRaw(vfs=vfs)
        db.register_csv("u", "u.csv", micro_schema(2))
        access = db.catalog.get("u").access
        assert list(access.scan([0, 1], None)) == [(1, 2), (3, 4)]
        # Second scan: last line's span is computed from the file length.
        assert list(access.scan([0, 1], None)) == [(1, 2), (3, 4)]


class TestSelectiveTokenizing:
    def test_prefix_scan_tokenizes_less(self):
        db_low, access_low = make_engine()
        db_high, access_high = make_engine()
        list(access_low.scan([1], None))
        list(access_high.scan([ATTRS - 1], None))
        low = db_low.model.count(CostEvent.TOKENIZE)
        high = db_high.model.count(CostEvent.TOKENIZE)
        assert low < high

    def test_newline_scan_charged_only_while_streaming(self):
        db, access = make_engine()
        list(access.scan([1], None))
        streamed = db.model.count(CostEvent.NEWLINE_SCAN)
        assert streamed >= db.vfs.size("m.csv")
        list(access.scan([1], None))
        assert db.model.count(CostEvent.NEWLINE_SCAN) == streamed


class TestPositionalMapMechanism:
    def test_second_scan_avoids_tokenizing(self):
        db, access = make_engine()
        list(access.scan([5], None))
        after_first = db.model.count(CostEvent.TOKENIZE)
        list(access.scan([5], None))
        # Attr 5's span is fully known (start of 5 and of 6 recorded):
        # zero additional tokenization; values come from the cache.
        assert db.model.count(CostEvent.TOKENIZE) == after_first

    def test_map_jump_for_nearby_attribute(self):
        # After querying attr 5, attr 6 can start from 5's position
        # instead of tokenizing the prefix 0..6.
        db, access = make_engine(enable_cache=False)
        list(access.scan([5], None))
        t0 = db.model.count(CostEvent.TOKENIZE)
        list(access.scan([6], None))
        jump_cost = db.model.count(CostEvent.TOKENIZE) - t0

        db2, access2 = make_engine(enable_cache=False)
        list(access2.scan([6], None))
        fresh_cost = db2.model.count(CostEvent.TOKENIZE)
        assert jump_cost < fresh_cost

    def test_backward_parsing_used(self):
        # Attr 9 indexed; asking for attr 8 should tokenize backward
        # from 9, far cheaper than forward from the line start.
        db, access = make_engine(enable_cache=False)
        list(access.scan([9], None))
        t0 = db.model.count(CostEvent.TOKENIZE)
        list(access.scan([8], None))
        backward_cost = db.model.count(CostEvent.TOKENIZE) - t0
        db2, access2 = make_engine(enable_cache=False)
        list(access2.scan([8], None))
        assert backward_cost < db2.model.count(CostEvent.TOKENIZE)

    def test_map_population_is_adaptive(self):
        db, access = make_engine()
        pm = access.pm
        assert pm.pointer_count == 0
        list(access.scan([3], None))
        pointers_after_q1 = pm.pointer_count
        assert pointers_after_q1 > 0
        list(access.scan([7], None))
        assert pm.pointer_count > pointers_after_q1

    def test_pm_budget_respected_during_scans(self):
        db, access = make_engine(pm_budget_bytes=2000)
        for attr in range(0, ATTRS, 2):
            list(access.scan([attr], None))
            assert access.pm.chunk_bytes <= 2000

    def test_disabled_pm_keeps_tokenizing(self):
        db, access = make_engine(enable_positional_map=False,
                                 enable_cache=False,
                                 enable_statistics=False)
        list(access.scan([5], None))
        first = db.model.count(CostEvent.TOKENIZE)
        list(access.scan([5], None))
        second = db.model.count(CostEvent.TOKENIZE) - first
        assert second == first  # no learning at all (Baseline)


class TestCacheMechanism:
    def test_fully_cached_scan_does_no_io(self):
        db, access = make_engine()
        list(access.scan([2, 6], None))
        io_before = (db.model.count(CostEvent.DISK_READ_COLD)
                     + db.model.count(CostEvent.DISK_READ_WARM))
        result = list(access.scan([2, 6], None))
        io_after = (db.model.count(CostEvent.DISK_READ_COLD)
                    + db.model.count(CostEvent.DISK_READ_WARM))
        assert io_after == io_before
        assert len(result) == ROWS
        assert db.model.count(CostEvent.CACHE_READ) >= 2 * ROWS

    def test_cached_scan_does_no_conversion(self):
        db, access = make_engine()
        list(access.scan([2], None))
        conv_before = db.model.count(CostEvent.CONVERT_INT)
        list(access.scan([2], None))
        assert db.model.count(CostEvent.CONVERT_INT) == conv_before

    def test_partial_cache_reads_only_missing(self):
        db, access = make_engine()
        list(access.scan([2], None))
        io_before = db.model.count(CostEvent.DISK_READ_WARM)
        list(access.scan([2, 3], None))  # attr 3 missing -> file access
        assert db.model.count(CostEvent.DISK_READ_WARM) > io_before

    def test_cache_budget_respected(self):
        db, access = make_engine(cache_budget_bytes=1500)
        for attr in range(ATTRS):
            list(access.scan([attr], None))
            assert access.cache.bytes_used <= 1500

    def test_cache_disabled_always_reads_file(self):
        db, access = make_engine(enable_cache=False)
        list(access.scan([2], None))
        io_before = (db.model.count(CostEvent.DISK_READ_COLD)
                     + db.model.count(CostEvent.DISK_READ_WARM))
        list(access.scan([2], None))
        io_after = (db.model.count(CostEvent.DISK_READ_COLD)
                    + db.model.count(CostEvent.DISK_READ_WARM))
        assert io_after > io_before


class TestSelectiveParsing:
    def test_select_attrs_converted_only_for_qualifying_rows(self):
        db, access = make_engine(enable_statistics=False)
        threshold = 100_000_000  # ~10% selectivity
        truth = ground_truth(db.vfs)
        qualifying = sum(1 for row in truth if row[0] < threshold)
        list(access.scan([5], predicate_lt(0, threshold)))
        conversions = db.model.count(CostEvent.CONVERT_INT)
        # attr 0 converted for every row; attr 5 only for qualifying.
        assert conversions == ROWS + qualifying

    def test_hundred_percent_selectivity_converts_all(self):
        db, access = make_engine(enable_statistics=False)
        list(access.scan([5], predicate_lt(0, 2 * 10 ** 9)))
        assert db.model.count(CostEvent.CONVERT_INT) == 2 * ROWS


class TestStatistics:
    def test_stats_collected_for_requested_attrs_only(self):
        db, access = make_engine()
        list(access.scan([3], None))
        stats = db.catalog.get("m").stats
        assert stats is not None
        assert stats.has_column("a4")       # attr 3 is a4
        assert not stats.has_column("a1")
        assert stats.row_count == ROWS

    def test_stats_augmented_incrementally(self):
        db, access = make_engine()
        list(access.scan([3], None))
        list(access.scan([6], None))
        stats = db.catalog.get("m").stats
        assert stats.has_column("a4") and stats.has_column("a7")

    def test_no_resampling_of_known_attrs(self):
        db, access = make_engine()
        list(access.scan([3], None))
        samples = db.model.count(CostEvent.STATS_SAMPLE)
        list(access.scan([3], None))
        assert db.model.count(CostEvent.STATS_SAMPLE) == samples

    def test_stats_disabled(self):
        db, access = make_engine(enable_statistics=False)
        list(access.scan([3], None))
        assert db.catalog.get("m").stats is None
        assert db.model.count(CostEvent.STATS_SAMPLE) == 0

    def test_stats_min_max_plausible(self):
        db, access = make_engine()
        truth = ground_truth(db.vfs)
        list(access.scan([0], None))
        column = db.catalog.get("m").stats.column("a1")
        actual = [row[0] for row in truth]
        assert min(actual) <= column.min_value <= column.max_value
        assert column.max_value <= max(actual)


class TestEagerPrefixIndexing:
    def test_eager_keeps_positions_along_the_way(self):
        # §4.2: "if a query requires attributes in positions 10 and 15,
        # all positions from 1 to 15 may be kept".
        db, access = make_engine(eager_prefix_indexing=True)
        list(access.scan([8], None))
        indexed = access.pm.indexed_attrs(0)
        assert set(range(1, 9)) <= set(indexed)

    def test_lazy_keeps_only_requested(self):
        db, access = make_engine(eager_prefix_indexing=False)
        list(access.scan([8], None))
        indexed = set(access.pm.indexed_attrs(0))
        assert 8 in indexed or 9 in indexed
        assert 2 not in indexed
