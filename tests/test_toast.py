"""Tests for TOAST out-of-line storage (§6 wide-tuple pathology)."""

import pytest

from repro import LoadedDBMS, PostgresRaw, Schema, VirtualFS, varchar
from repro.errors import StorageError
from repro.simcost.clock import CostEvent
from repro.simcost.model import CostModel
from repro.sql.datatypes import INTEGER
from repro.storage.loader import BulkLoader
from repro.storage.toast import (
    TOAST_TUPLE_THRESHOLD,
    ToastReader,
    ToastWriter,
    is_pointer,
    make_pointer,
    parse_pointer,
    toast_values,
)


class TestPointers:
    def test_roundtrip(self):
        pointer = make_pointer(1234, 56)
        assert is_pointer(pointer)
        assert parse_pointer(pointer) == (1234, 56)

    def test_ordinary_strings_are_not_pointers(self):
        assert not is_pointer("hello")
        assert not is_pointer("")
        assert not is_pointer(42)

    def test_malformed_pointer_rejected(self):
        with pytest.raises(StorageError):
            parse_pointer("\x00Tgarbage")


class TestWriterReader:
    def test_store_and_fetch(self, vfs):
        model = CostModel()
        writer = ToastWriter(vfs, "t.toast", model)
        p1 = writer.store("x" * 100)
        p2 = writer.store("y" * 200)
        reader = ToastReader(vfs, "t.toast", model)
        assert reader.fetch(p1) == "x" * 100
        assert reader.fetch(p2) == "y" * 200
        assert writer.values_written == 2

    def test_fetch_charges_toast_event(self, vfs):
        model = CostModel()
        writer = ToastWriter(vfs, "t.toast", model)
        pointer = writer.store("v" * 80)
        ToastReader(vfs, "t.toast", model).fetch(pointer)
        assert model.count(CostEvent.TOAST_FETCH) == 1

    def test_resolve_passthrough(self, vfs):
        model = CostModel()
        writer = ToastWriter(vfs, "t.toast", model)
        pointer = writer.store("long" * 30)
        reader = ToastReader(vfs, "t.toast", model)
        assert reader.resolve("inline") == "inline"
        assert reader.resolve(pointer) == "long" * 30

    def test_unicode_values(self, vfs):
        model = CostModel()
        writer = ToastWriter(vfs, "t.toast", model)
        value = "naïve-δ" * 20
        pointer = writer.store(value)
        assert ToastReader(vfs, "t.toast", model).fetch(pointer) == value


class TestToastValues:
    def test_narrow_tuple_untouched(self, vfs):
        model = CostModel()
        writer = ToastWriter(vfs, "t.toast", model)
        values = [1, "short"]
        out = toast_values(values, ["int", "str"], writer,
                           lambda v: 50)
        assert out == [1, "short"]
        assert writer.values_written == 0

    def test_wide_tuple_toasts_largest_first(self, vfs):
        model = CostModel()
        writer = ToastWriter(vfs, "t.toast", model)
        values = ["a" * 500, "b" * 2000, "c" * 100]
        families = ["str", "str", "str"]

        def width(vals):
            return sum(len(v) for v in vals)

        out = toast_values(values, families, writer, width,
                           threshold=1000)
        # The 2000-byte value goes first; that alone is enough.
        assert is_pointer(out[1])
        assert not is_pointer(out[0])
        assert not is_pointer(out[2])

    def test_stops_when_under_threshold(self, vfs):
        model = CostModel()
        writer = ToastWriter(vfs, "t.toast", model)
        values = ["a" * 900, "b" * 900, "c" * 900]

        def width(vals):
            return sum(len(v) for v in vals)

        toast_values(values, ["str"] * 3, writer, width, threshold=1500)
        assert writer.values_written == 2  # third value stays inline


class TestEndToEnd:
    def wide_schema(self):
        return Schema([("id", INTEGER)]
                      + [(f"s{i}", varchar()) for i in range(8)])

    def wide_csv(self, vfs, width=400, rows=20):
        lines = []
        for r in range(rows):
            fields = [str(r)] + [f"{chr(97 + i)}" * width
                                 for i in range(8)]
            lines.append(",".join(fields))
        vfs.create("wide.csv", ("\n".join(lines) + "\n").encode())

    def test_load_creates_toast_file(self, vfs):
        self.wide_csv(vfs)  # rows ~3.2 KB > threshold
        db = LoadedDBMS(vfs=vfs)
        db.load_csv("wide", "wide.csv", self.wide_schema())
        toast_files = [p for p in db.vfs.listdir() if p.endswith(".toast")]
        assert toast_files, "wide rows must produce a toast file"

    def test_loaded_results_match_raw(self, vfs):
        self.wide_csv(vfs)
        loaded = LoadedDBMS(vfs=vfs)
        loaded.load_csv("wide", "wide.csv", self.wide_schema())
        raw = PostgresRaw(vfs=vfs)
        raw.register_csv("wide", "wide.csv", self.wide_schema())
        for sql in ("SELECT id, s3 FROM wide WHERE id < 5",
                    "SELECT count(*) FROM wide WHERE s0 LIKE 'aaa%'",
                    "SELECT max(s7) FROM wide"):
            assert sorted(loaded.query(sql).rows) == sorted(
                raw.query(sql).rows), sql

    def test_toast_fetch_charged_only_for_touched_attrs(self, vfs):
        self.wide_csv(vfs, rows=10)
        db = LoadedDBMS(vfs=vfs)
        db.load_csv("wide", "wide.csv", self.wide_schema())
        db.query("SELECT id FROM wide")  # id is inline
        assert db.model.count(CostEvent.TOAST_FETCH) == 0
        # Equal-length candidates toast in index order until the tuple
        # fits: s0 is out of line, the last string stays inline.
        db.query("SELECT s0 FROM wide")
        assert db.model.count(CostEvent.TOAST_FETCH) >= 10
        fetches = db.model.count(CostEvent.TOAST_FETCH)
        db.query("SELECT s7 FROM wide")  # inline survivor
        assert db.model.count(CostEvent.TOAST_FETCH) == fetches

    def test_narrow_rows_never_toast(self, vfs):
        vfs.create("narrow.csv", b"1,a\n2,b\n")
        db = LoadedDBMS(vfs=vfs)
        db.load_csv("narrow", "narrow.csv",
                    Schema([("id", INTEGER), ("s", varchar())]))
        db.query("SELECT s FROM narrow")
        assert db.model.count(CostEvent.TOAST_FETCH) == 0

    def test_threshold_matches_postgres_ballpark(self):
        assert 1500 <= TOAST_TUPLE_THRESHOLD <= 2200
