"""ALTER TABLE ... RENAME TO: catalog renames with positioned errors.

A rename changes only the catalog key: the ``TableInfo`` object (and
therefore every auxiliary structure and rollup holding it by identity)
survives. The stats epoch bumps so prepared statements re-plan — ones
naming the old table then fail cleanly instead of serving stale plans.
"""

from __future__ import annotations

import pytest

import repro
from repro import LoadedDBMS, PostgresRaw, VirtualFS
from repro.errors import CatalogError, ParseError

from conftest import PEOPLE_CSV, people_schema


@pytest.fixture
def raw() -> PostgresRaw:
    fs = VirtualFS()
    fs.create("people.csv", PEOPLE_CSV)
    db = PostgresRaw(vfs=fs)
    db.register_csv("people", "people.csv", people_schema())
    return db


class TestRename:
    def test_rename_moves_the_catalog_entry(self, raw):
        result = raw.query("ALTER TABLE people RENAME TO folks")
        assert result.rows == [("ALTER TABLE people RENAME TO folks",)]
        assert raw.query("SELECT count(*) FROM folks").scalar() == 5
        with pytest.raises(CatalogError, match="unknown table"):
            raw.query("SELECT count(*) FROM people")

    def test_info_identity_and_name_updated(self, raw):
        info = raw.catalog.get("people")
        raw.query("ALTER TABLE people RENAME TO folks")
        assert raw.catalog.get("folks") is info
        assert info.name == "folks"

    def test_warm_structures_survive(self, raw):
        warm = raw.query("SELECT name FROM people WHERE age > 26")
        raw.query("ALTER TABLE people RENAME TO folks")
        again = raw.query("SELECT name FROM folks WHERE age > 26")
        assert again.rows == warm.rows
        # the positional map built pre-rename still serves: the second
        # run is cheaper than the cold one
        assert again.elapsed < warm.elapsed

    def test_rename_to_existing_name_rejected(self, raw):
        raw.query("CREATE TABLE other (a INTEGER) USING csv "
                  "OPTIONS (path 'people.csv')")
        with pytest.raises(CatalogError, match="already registered"):
            raw.query("ALTER TABLE people RENAME TO other")
        assert raw.catalog.has("people")  # unchanged on failure

    def test_missing_table_rejected_unless_if_exists(self, raw):
        with pytest.raises(CatalogError, match="unknown table"):
            raw.query("ALTER TABLE nope RENAME TO whatever")
        result = raw.query("ALTER TABLE IF EXISTS nope RENAME TO whatever")
        assert "skipped" in result.rows[0][0]

    def test_case_insensitive_lookup(self, raw):
        raw.query("ALTER TABLE People RENAME TO Folks")
        assert raw.query("SELECT count(*) FROM FOLKS").scalar() == 5

    def test_parse_errors_are_positioned(self, raw):
        for bad, fragment in (
                ("ALTER TABLE people RENAME folks", "TO"),
                ("ALTER TABLE people", "RENAME"),
                ("ALTER people RENAME TO folks", "TABLE"),
                ("ALTER TABLE people RENAME TO", "table name"),
        ):
            with pytest.raises(ParseError, match=fragment):
                raw.query(bad)

    def test_loaded_engine_rename(self):
        fs = VirtualFS()
        fs.create("people.csv", PEOPLE_CSV)
        db = LoadedDBMS(vfs=fs)
        db.load_csv("people", "people.csv", people_schema())
        db.query("ALTER TABLE people RENAME TO folks")
        assert db.query(
            "SELECT name FROM folks WHERE id = 1").rows == [("alice",)]


class TestRenameAndPreparedStatements:
    def test_prepared_on_old_name_fails_cleanly(self, raw):
        session = repro.connect(engine=raw)
        stmt = session.prepare("SELECT count(*) FROM people")
        assert stmt.execute().fetchone() == (5,)
        session.execute("ALTER TABLE people RENAME TO folks")
        with pytest.raises(Exception, match="unknown table"):
            stmt.execute()
        session.close()

    def test_rename_bumps_epoch_and_replans(self, raw):
        session = repro.connect(engine=raw)
        stmt = session.prepare("SELECT count(*) FROM people")
        stmt.execute()
        replans = session.stats["replans"]
        session.execute("ALTER TABLE people RENAME TO folks")
        session.execute("ALTER TABLE folks RENAME TO people")
        assert stmt.execute().fetchone() == (5,)
        assert session.stats["replans"] == replans + 1
        session.close()
