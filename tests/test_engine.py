"""End-to-end tests for the PostgresRaw engine (SQL level)."""

import datetime

import pytest

from repro import (
    INTEGER,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)
from repro.errors import CatalogError, PlanningError
from tests.conftest import PEOPLE_CSV, people_schema


class TestRegistration:
    def test_register_requires_existing_file(self, vfs):
        db = PostgresRaw(vfs=vfs)
        with pytest.raises(CatalogError):
            db.register_csv("t", "missing.csv", people_schema())

    def test_duplicate_registration_rejected(self, people_vfs):
        db = PostgresRaw(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        with pytest.raises(CatalogError):
            db.register_csv("people", "people.csv", people_schema())

    def test_registration_touches_no_data(self, people_vfs):
        db = PostgresRaw(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        # NoDB's whole point: zero data access until the first query.
        assert db.elapsed() == 0.0

    def test_add_file_synonym(self, people_vfs):
        db = PostgresRaw(vfs=people_vfs)
        info = db.add_file("people", "people.csv", people_schema())
        assert db.catalog.has("people")
        assert info.schema.arity == 5


class TestQueries:
    def test_projection(self, people_raw):
        result = people_raw.query("SELECT name FROM people")
        assert result.column("name") == ["alice", "bob", "carol", "dave",
                                         "erin"]

    def test_star(self, people_raw):
        result = people_raw.query("SELECT * FROM people")
        assert len(result.columns) == 5
        assert result.rows[0][:3] == (1, "alice", 30)

    def test_where_on_date(self, people_raw):
        result = people_raw.query(
            "SELECT name FROM people WHERE birth >= DATE '1998-01-01'")
        assert sorted(result.column("name")) == ["alice", "bob", "erin"]

    def test_arithmetic_projection(self, people_raw):
        result = people_raw.query(
            "SELECT name, age * 2 AS dbl FROM people WHERE id = 1")
        assert result.rows == [("alice", 60)]

    def test_aggregates(self, people_raw):
        result = people_raw.query(
            "SELECT count(*), min(age), max(age), avg(height) FROM people")
        row = result.rows[0]
        assert row[0] == 5
        assert row[1] == 25 and row[2] == 35
        assert row[3] == pytest.approx((170.5 + 182.0 + 165.2 + 190.1
                                        + 158.7) / 5)

    def test_group_by_order_by(self, people_raw):
        result = people_raw.query(
            "SELECT age, count(*) AS n FROM people GROUP BY age "
            "ORDER BY n DESC, age ASC")
        assert result.rows[0] == (25, 2)

    def test_having(self, people_raw):
        result = people_raw.query(
            "SELECT age, count(*) AS n FROM people GROUP BY age "
            "HAVING count(*) > 1")
        assert result.rows == [(25, 2)]

    def test_limit(self, people_raw):
        result = people_raw.query(
            "SELECT name FROM people ORDER BY age DESC LIMIT 2")
        assert result.column("name") == ["carol", "alice"]

    def test_select_alias_in_order_by(self, people_raw):
        result = people_raw.query(
            "SELECT name, age + 100 AS score FROM people "
            "ORDER BY score DESC LIMIT 1")
        assert result.rows == [("carol", 135)]

    def test_case_expression(self, people_raw):
        result = people_raw.query(
            "SELECT name, CASE WHEN age < 27 THEN 'young' ELSE 'older' END "
            "AS bucket FROM people ORDER BY id")
        assert result.rows[0] == ("alice", "older")
        assert result.rows[1] == ("bob", "young")

    def test_query_result_helpers(self, people_raw):
        result = people_raw.query("SELECT count(*) FROM people")
        assert result.scalar() == 5
        assert len(result) == 1
        dicts = people_raw.query(
            "SELECT id, name FROM people WHERE id = 1").as_dicts()
        assert dicts == [{"id": 1, "name": "alice"}]

    def test_unknown_table(self, people_raw):
        with pytest.raises(CatalogError):
            people_raw.query("SELECT x FROM nope")

    def test_unknown_column(self, people_raw):
        with pytest.raises(PlanningError):
            people_raw.query("SELECT nonexistent FROM people")

    def test_elapsed_virtual_time_increases(self, people_raw):
        first = people_raw.query("SELECT name FROM people")
        assert first.elapsed > 0
        assert people_raw.elapsed() >= first.elapsed

    def test_counters_exposed(self, people_raw):
        result = people_raw.query("SELECT name FROM people")
        assert result.counters.get("tuple_overhead") == 5

    def test_explain(self, people_raw):
        plan = people_raw.explain("SELECT name FROM people WHERE id = 1")
        assert plan["op"] == "Project"
        scan = plan["input"]
        assert scan["op"] == "Scan"
        assert scan["access"] == "RawCsvAccess"
        assert scan["pushed_predicates"] == 1


class TestAdaptivity:
    def test_second_query_faster(self, people_raw):
        q = "SELECT name, age FROM people"
        first = people_raw.query(q)
        second = people_raw.query(q)
        assert second.elapsed < first.elapsed

    def test_auxiliary_bytes_grow_then_drop(self, people_raw):
        people_raw.query("SELECT name, age FROM people")
        aux = people_raw.auxiliary_bytes("people")
        assert aux["positional_map"] > 0
        assert aux["cache"] > 0
        people_raw.drop_auxiliary("people")
        aux = people_raw.auxiliary_bytes("people")
        assert aux == {"positional_map": 0, "cache": 0}

    def test_drop_auxiliary_keeps_answers_correct(self, people_raw):
        q = "SELECT name FROM people WHERE age = 25"
        before = people_raw.query(q).rows
        people_raw.drop_auxiliary("people")
        assert people_raw.query(q).rows == before

    def test_stats_appear_after_queries(self, people_raw):
        assert people_raw.catalog.get("people").stats is None
        people_raw.query("SELECT age FROM people")
        stats = people_raw.catalog.get("people").stats
        assert stats is not None and stats.has_column("age")


class TestConfigurationVariants:
    @pytest.mark.parametrize("config", [
        PostgresRawConfig(enable_positional_map=False, enable_cache=False),
        PostgresRawConfig(enable_positional_map=True, enable_cache=False),
        PostgresRawConfig(enable_positional_map=False, enable_cache=True),
        PostgresRawConfig(enable_statistics=False),
        PostgresRawConfig(row_block_size=2),
        PostgresRawConfig(pm_budget_bytes=128, cache_budget_bytes=128),
    ], ids=["baseline", "pm-only", "cache-only", "no-stats",
            "tiny-blocks", "tiny-budgets"])
    def test_all_variants_agree(self, people_vfs, config):
        reference = PostgresRaw(vfs=people_vfs)
        reference.register_csv("people", "people.csv", people_schema())
        variant = PostgresRaw(config=config, vfs=people_vfs)
        variant.register_csv("people", "people.csv", people_schema())
        queries = [
            "SELECT name FROM people WHERE age < 30",
            "SELECT age, count(*) FROM people GROUP BY age",
            "SELECT name FROM people WHERE age < 30",  # repeat (warm)
        ]
        for q in queries:
            assert sorted(variant.query(q).rows) == sorted(
                reference.query(q).rows)


class TestMultiTable:
    def test_join_and_semijoin(self, vfs):
        vfs.create("dept.csv", b"1,eng\n2,sales\n3,legal\n")
        vfs.create("emp.csv", b"1,ann,1\n2,bo,1\n3,cy,2\n")
        db = PostgresRaw(vfs=vfs)
        db.register_csv("dept", "dept.csv",
                        Schema([("d_id", INTEGER), ("d_name", varchar())]))
        db.register_csv("emp", "emp.csv",
                        Schema([("e_id", INTEGER), ("e_name", varchar()),
                                ("e_dept", INTEGER)]))
        joined = db.query(
            "SELECT d_name, count(*) AS n FROM emp, dept "
            "WHERE e_dept = d_id GROUP BY d_name ORDER BY n DESC")
        assert joined.rows == [("eng", 2), ("sales", 1)]
        semi = db.query(
            "SELECT d_name FROM dept WHERE EXISTS "
            "(SELECT * FROM emp WHERE e_dept = d_id) ORDER BY d_name")
        assert semi.column("d_name") == ["eng", "sales"]
        anti = db.query(
            "SELECT d_name FROM dept WHERE NOT EXISTS "
            "(SELECT * FROM emp WHERE e_dept = d_id)")
        assert anti.rows == [("legal",)]

    def test_self_join_with_aliases(self, people_vfs):
        db = PostgresRaw(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        result = db.query(
            "SELECT a.name, b.name FROM people a, people b "
            "WHERE a.age = b.age AND a.id < b.id")
        assert result.rows == [("bob", "erin")]
