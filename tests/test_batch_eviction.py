"""PM/cache eviction under batching (§4.2/§4.3 Maintenance).

Tight ``pm_budget_bytes`` / ``cache_budget_bytes`` force evictions (and
PM spill when enabled) *while* batch-mode scans are in flight; partial
cache blocks force mixed cached/converted rows inside one block. None
of it may change answers — evictions cost time, never correctness —
and the batch path must behave exactly like the scalar oracle.
"""

import random

import pytest

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.sql.scanapi import ScanPredicate
from repro.workloads.micro import generate_micro_csv, micro_schema

ROWS = 240
ATTRS = 10


def make_pair(**config_kwargs):
    """Batch-mode engine and scalar twin over identical files."""
    engines = []
    for batch in (True, False):
        vfs = VirtualFS()
        generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=77)
        config = PostgresRawConfig(row_block_size=16, batch_mode=batch,
                                   enable_statistics=False,
                                   **config_kwargs)
        db = PostgresRaw(config=config, vfs=vfs)
        db.register_csv("m", "m.csv", micro_schema(ATTRS))
        engines.append(db)
    return engines


def ground_truth(db):
    return [[int(v) for v in line.split(",")]
            for line in db.vfs.read_bytes("m.csv").decode().splitlines()]


def predicate_lt(attr, threshold):
    return ScanPredicate(
        attrs=[attr],
        fn=lambda values, a=attr, t=threshold: values[a] < t,
        n_terms=1)


def run_and_compare(db_batch, db_scalar, attrs, predicate, truth,
                    expected_fn):
    access_b = db_batch.catalog.get("m").access
    access_s = db_scalar.catalog.get("m").access
    got_b = list(access_b.scan(attrs, predicate))
    got_s = list(access_s.scan(attrs, predicate))
    expected = expected_fn(truth)
    assert got_b == expected, "batch diverged from ground truth"
    assert got_s == expected, "scalar diverged from ground truth"


class TestCacheEvictionUnderBatching:
    def test_tight_cache_budget_mid_scan(self):
        """The budget is far smaller than one query's conversions, so
        eviction fires during every scan; results must stay exact."""
        db_b, db_s = make_pair(cache_budget_bytes=600)
        truth = ground_truth(db_b)
        workload = [
            ([2, 5], None),
            ([5], predicate_lt(2, 500_000_000)),
            ([0, 7, 9], None),
            ([2, 5], None),
        ]
        for attrs, pred in workload:
            if pred is None:
                expected = lambda t, a=attrs: [
                    tuple(row[x] for x in a) for row in t]
            else:
                expected = lambda t, a=attrs: [
                    tuple(row[x] for x in a) for row in t
                    if row[2] < 500_000_000]
            run_and_compare(db_b, db_s, attrs, pred, truth, expected)
            assert db_b.cache_of("m").bytes_used <= 600
            assert db_b.cache_of("m").evictions > 0 or attrs == [2, 5]
        assert db_b.cache_of("m").evictions > 0

    def test_partial_block_masks_after_selective_warmup(self):
        """A selective query caches only qualifying rows; the next full
        query must merge cache hits with fresh conversions inside every
        block (partial-block masks)."""
        db_b, db_s = make_pair()
        truth = ground_truth(db_b)
        threshold = 400_000_000
        pred = predicate_lt(0, threshold)
        run_and_compare(
            db_b, db_s, [3], pred, truth,
            lambda t: [(row[3],) for row in t if row[0] < threshold])
        # Attr 3 is now cached only for qualifying rows: every block
        # holds a partial mask. The unfiltered scan must still be exact.
        run_and_compare(db_b, db_s, [3], None, truth,
                        lambda t: [(row[3],) for row in t])
        cache = db_b.cache_of("m")
        # At least one block must have been genuinely partial.
        assert any(0 < block.filled < len(block.mask)
                   for block in cache._blocks.values()) or \
            all(block.complete for block in cache._blocks.values())

    def test_eviction_then_refetch_is_exact(self):
        db_b, db_s = make_pair(cache_budget_bytes=400)
        truth = ground_truth(db_b)
        rng = random.Random(5)
        for _ in range(6):
            attrs = rng.sample(range(ATTRS), rng.randint(1, 3))
            run_and_compare(
                db_b, db_s, attrs, None, truth,
                lambda t, a=tuple(attrs): [
                    tuple(row[x] for x in a) for row in t])


class TestPmEvictionUnderBatching:
    def test_tight_pm_budget_mid_scan(self):
        db_b, db_s = make_pair(pm_budget_bytes=256, enable_cache=False)
        truth = ground_truth(db_b)
        for attr in (1, 4, 7, 9, 2):
            run_and_compare(
                db_b, db_s, [attr], None, truth,
                lambda t, a=attr: [(row[a],) for row in t])
            assert db_b.positional_map_of("m").chunk_bytes <= 256
        assert db_b.positional_map_of("m").evictions > 0

    def test_pm_spill_round_trip(self):
        """With spilling, evicted chunks go to the VFS and are read
        back on demand; batch scans must hit the same spilled chunks
        the scalar path does and produce exact results."""
        db_b, db_s = make_pair(pm_budget_bytes=256, pm_spill_enabled=True,
                               enable_cache=False)
        truth = ground_truth(db_b)
        for attr in (1, 4, 7, 9):
            run_and_compare(
                db_b, db_s, [attr], None, truth,
                lambda t, a=attr: [(row[a],) for row in t])
        # Force re-use of spilled chunks: re-query early attributes.
        for attr in (1, 4):
            run_and_compare(
                db_b, db_s, [attr], None, truth,
                lambda t, a=attr: [(row[a],) for row in t])
        pm = db_b.positional_map_of("m")
        assert pm.evictions > 0
        assert pm.spill_loads > 0

    def test_combined_budgets_and_predicates(self):
        db_b, db_s = make_pair(pm_budget_bytes=512,
                               cache_budget_bytes=512)
        truth = ground_truth(db_b)
        rng = random.Random(11)
        for _ in range(6):
            attr = rng.randrange(ATTRS)
            wattr = rng.randrange(ATTRS)
            threshold = rng.randrange(10 ** 9)
            pred = predicate_lt(wattr, threshold)
            run_and_compare(
                db_b, db_s, [attr], pred, truth,
                lambda t, a=attr, w=wattr, th=threshold: [
                    (row[a],) for row in t if row[w] < th])
            assert db_b.positional_map_of("m").chunk_bytes <= 512
            assert db_b.cache_of("m").bytes_used <= 512
