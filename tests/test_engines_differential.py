"""Differential tests: PostgresRaw, LoadedDBMS and ExternalFilesDBMS
must return identical result sets for every query (DESIGN.md §5,
"Engine equivalence invariant")."""

import random

import pytest

from repro import (
    DBMS_X_PROFILE,
    ExternalFilesDBMS,
    LoadedDBMS,
    MYSQL_PROFILE,
    PostgresRaw,
    VirtualFS,
)
from repro.workloads.micro import generate_micro_csv, micro_schema
from repro.workloads.queries import (
    random_projection_query,
    selectivity_query,
)

ROWS = 400
ATTRS = 10


@pytest.fixture(scope="module")
def engines():
    vfs = VirtualFS()
    schema = generate_micro_csv(vfs, "m.csv", ROWS, ATTRS, seed=42)
    raw = PostgresRaw(vfs=vfs)
    raw.register_csv("m", "m.csv", schema)
    postgres = LoadedDBMS(vfs=vfs)
    postgres.load_csv("m", "m.csv", schema)
    dbms_x = LoadedDBMS(profile=DBMS_X_PROFILE, vfs=vfs)
    dbms_x.load_csv("m", "m.csv", schema)
    mysql = LoadedDBMS(profile=MYSQL_PROFILE, vfs=vfs)
    mysql.load_csv("m", "m.csv", schema)
    external = ExternalFilesDBMS(vfs=vfs)
    external.register_csv("m", "m.csv", schema)
    return [raw, postgres, dbms_x, mysql, external]


def assert_all_agree(engines, sql):
    results = [sorted(map(repr, engine.query(sql).rows))
               for engine in engines]
    for engine, result in zip(engines[1:], results[1:]):
        assert result == results[0], f"{engine.name} diverged on {sql!r}"


class TestDifferential:
    def test_random_projections(self, engines):
        rng = random.Random(1)
        for _ in range(5):
            sql = random_projection_query(rng, "m", ATTRS, 3)
            assert_all_agree(engines, sql)

    @pytest.mark.parametrize("selectivity", [1.0, 0.5, 0.1, 0.01, 0.0])
    def test_selectivity_sweep(self, engines, selectivity):
        assert_all_agree(engines,
                         selectivity_query("m", ATTRS, selectivity, 0.5))

    @pytest.mark.parametrize("projectivity", [1.0, 0.5, 0.1])
    def test_projectivity_sweep(self, engines, projectivity):
        assert_all_agree(engines,
                         selectivity_query("m", ATTRS, 0.8, projectivity))

    def test_group_by(self, engines):
        assert_all_agree(
            engines,
            "SELECT a1 - a1 + a2, count(*), min(a3) FROM m "
            "GROUP BY a1 - a1 + a2")

    def test_order_by_limit(self, engines):
        # LIMIT needs a total order to be deterministic: a1 may repeat,
        # so break ties with a2 (values are random ints; collisions of
        # the *pair* are vanishingly unlikely but sort both anyway).
        assert_all_agree(engines,
                         "SELECT a1, a2 FROM m ORDER BY a1, a2 LIMIT 17")

    def test_repeat_queries_stay_consistent(self, engines):
        # Warm structures (PM, cache, buffer pools) must not change
        # answers.
        sql = selectivity_query("m", ATTRS, 0.3, 0.3)
        for _ in range(3):
            assert_all_agree(engines, sql)

    def test_complex_predicate(self, engines):
        assert_all_agree(
            engines,
            "SELECT a2 FROM m WHERE (a1 < 500000000 AND a3 > 100000000) "
            "OR a4 BETWEEN 200000000 AND 300000000")

    def test_aggregates_on_empty_selection(self, engines):
        assert_all_agree(
            engines,
            "SELECT count(*), sum(a1), avg(a2), min(a3), max(a4) "
            "FROM m WHERE a1 < 0")

    def test_case_projection(self, engines):
        assert_all_agree(
            engines,
            "SELECT sum(CASE WHEN a1 < 500000000 THEN 1 ELSE 0 END) FROM m")
