"""DDL front end: CREATE/DROP/SHOW/DESCRIBE through the adapter registry.

Covers the statement-dispatch split (Database.query and Session.execute
share one path), the format registry's error taxonomy (CatalogError /
ParseError with token positions, never tracebacks of other kinds), the
DROP lifecycle (auxiliary teardown + stats-epoch bump so prepared
statements re-plan), and the collapsed register_* deprecation shims.
"""

from __future__ import annotations

import pytest

import repro
from repro import (
    INTEGER,
    ExternalFilesDBMS,
    LoadedDBMS,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)
from repro.api.exceptions import ProgrammingError
from repro.api.session import DDLStatement
from repro.errors import CatalogError, ParseError
from repro.formats.registry import available_formats, get_format
from repro.sql.parser import parse

PEOPLE = b"1,alice,30\n2,bob,25\n3,carol,35\n"
CREATE_PEOPLE = ("CREATE TABLE people (id INTEGER, name VARCHAR, "
                 "age INTEGER) USING csv OPTIONS (path 'people.csv')")


@pytest.fixture
def fs() -> VirtualFS:
    vfs = VirtualFS()
    vfs.create("people.csv", PEOPLE)
    return vfs


@pytest.fixture
def raw(fs) -> PostgresRaw:
    return PostgresRaw(vfs=fs)


class TestCreateTable:
    def test_create_select_roundtrip_database(self, raw):
        result = raw.query(CREATE_PEOPLE)
        assert result.rows == [("CREATE TABLE people",)]
        assert raw.query("SELECT name FROM people WHERE age > 26"
                         ).rows == [("alice",), ("carol",)]

    def test_create_select_roundtrip_session(self, raw):
        session = repro.connect(engine=raw)
        session.execute(CREATE_PEOPLE)
        cur = session.execute("SELECT count(*) FROM people")
        assert cur.fetchone() == (3,)
        session.close()

    def test_create_records_format_and_options(self, raw):
        raw.query(CREATE_PEOPLE)
        info = raw.catalog.get("people")
        assert info.format == "csv"
        assert info.options["path"] == "people.csv"
        assert info.external is False

    def test_using_omitted_sniffs_extension(self, raw):
        raw.query("CREATE TABLE people (id INTEGER, name VARCHAR, "
                  "age INTEGER) OPTIONS (path 'people.csv')")
        assert raw.catalog.get("people").format == "csv"

    def test_delimiter_option(self, fs):
        fs.create("pipe.tbl", b"1|x\n2|y\n")
        db = PostgresRaw(vfs=fs)
        db.query("CREATE TABLE t (a INTEGER, b VARCHAR) USING csv "
                 "OPTIONS (path 'pipe.tbl', delimiter '|')")
        assert db.query("SELECT b FROM t WHERE a = 2").rows == [("y",)]

    def test_external_table_binds_strawman(self, raw):
        raw.query("CREATE EXTERNAL TABLE people (id INTEGER, "
                  "name VARCHAR, age INTEGER) USING csv "
                  "OPTIONS (path 'people.csv')")
        info = raw.catalog.get("people")
        assert info.external is True
        assert type(info.access).__name__ == "ExternalAccess"
        # No auxiliary structures ever exist for the straw-man binding.
        assert raw.auxiliary_bytes("people") == {"positional_map": 0,
                                                 "cache": 0}
        assert raw.query("SELECT count(*) FROM people").scalar() == 3

    def test_create_on_external_engine(self, fs):
        db = ExternalFilesDBMS(vfs=fs)
        db.query(CREATE_PEOPLE)
        assert type(db.catalog.get("people").access).__name__ == \
            "ExternalAccess"
        assert db.query("SELECT max(age) FROM people").scalar() == 35

    def test_create_heap_on_loaded_engine(self, fs):
        db = LoadedDBMS(vfs=fs)
        db.query("CREATE TABLE people (id INTEGER, name VARCHAR, "
                 "age INTEGER) USING heap OPTIONS (path 'people.csv')")
        info = db.catalog.get("people")
        assert info.format == "heap"
        assert info.path.endswith(".heap")
        assert info.extra["source_path"] == "people.csv"
        assert info.stats is not None  # built at load time
        assert db.query("SELECT sum(age) FROM people").scalar() == 90

    def test_not_null_and_type_args(self, raw):
        raw.query("CREATE TABLE t (id INTEGER NOT NULL, "
                  "name VARCHAR(8), score DECIMAL(6, 2)) "
                  "USING csv OPTIONS (path 'people.csv')")
        described = raw.query("DESCRIBE t")
        assert described.columns == ["column", "type", "nullable"]
        assert described.rows == [("id", "INTEGER", "NO"),
                                  ("name", "VARCHAR(8)", "YES"),
                                  ("score", "DECIMAL(6,2)", "YES")]


class TestShowAndDescribe:
    def test_show_tables(self, raw):
        assert raw.query("SHOW TABLES").rows == []
        raw.query(CREATE_PEOPLE)
        result = raw.query("SHOW TABLES")
        assert result.columns == ["table", "format", "columns", "path"]
        assert result.rows == [("people", "csv", 3, "people.csv")]

    def test_show_tables_through_cursor(self, raw):
        raw.query(CREATE_PEOPLE)
        session = repro.connect(engine=raw)
        cur = session.execute("SHOW TABLES")
        assert cur.description[0][0] == "table"
        assert cur.fetchall() == [("people", "csv", 3, "people.csv")]

    def test_describe_unknown_table(self, raw):
        with pytest.raises(CatalogError):
            raw.query("DESCRIBE nothing")


class TestErrorPaths:
    def test_duplicate_table(self, raw):
        raw.query(CREATE_PEOPLE)
        with pytest.raises(CatalogError, match="already registered"):
            raw.query(CREATE_PEOPLE)

    def test_unknown_using_format(self, raw):
        with pytest.raises(CatalogError, match="unknown format"):
            raw.query("CREATE TABLE t (a INTEGER) USING parquet "
                      "OPTIONS (path 'people.csv')")

    def test_unknown_format_error_lists_registered(self, raw):
        with pytest.raises(CatalogError, match="csv"):
            raw.query("CREATE TABLE t (a INTEGER) USING nope "
                      "OPTIONS (path 'people.csv')")

    def test_unknown_option_key(self, raw):
        with pytest.raises(CatalogError, match="does not accept"):
            raw.query("CREATE TABLE t (a INTEGER) USING csv "
                      "OPTIONS (path 'people.csv', compression 'zstd')")

    def test_missing_required_path(self, raw):
        with pytest.raises(CatalogError, match="requires option"):
            raw.query("CREATE TABLE t (a INTEGER) USING csv")

    def test_missing_file(self, raw):
        with pytest.raises(CatalogError, match="does not exist"):
            raw.query("CREATE TABLE t (a INTEGER) USING csv "
                      "OPTIONS (path 'nope.csv')")

    def test_bad_delimiter(self, raw):
        with pytest.raises(CatalogError, match="single byte"):
            raw.query("CREATE TABLE t (a INTEGER) USING csv "
                      "OPTIONS (path 'people.csv', delimiter '||')")

    def test_schema_file_arity_mismatch(self, raw):
        """Declaring more columns than the file carries fails at CREATE
        (every scan would fail); declaring fewer is prefix-compatible."""
        with pytest.raises(CatalogError, match="3 field"):
            raw.query("CREATE TABLE t (a INTEGER, b VARCHAR, "
                      "c INTEGER, d INTEGER) USING csv "
                      "OPTIONS (path 'people.csv')")
        raw.query("CREATE TABLE t (a INTEGER) USING csv "
                  "OPTIONS (path 'people.csv')")  # prefix: fine

    def test_unknown_type_is_parse_error_with_position(self, raw):
        with pytest.raises(ParseError) as excinfo:
            raw.query("CREATE TABLE t (a WIBBLE) USING csv "
                      "OPTIONS (path 'people.csv')")
        assert "position" in str(excinfo.value)
        assert excinfo.value.token is not None
        assert excinfo.value.token.position > 0

    def test_reserved_word_refused_as_column_name(self, raw):
        """A keyword-named column could never be referenced in a
        SELECT, so CREATE refuses it up front with a position."""
        with pytest.raises(ParseError, match="reserved word"):
            raw.query("CREATE TABLE t (options INTEGER) USING csv "
                      "OPTIONS (path 'people.csv')")

    def test_malformed_options_value(self, raw):
        with pytest.raises(ParseError, match="position"):
            raw.query("CREATE TABLE t (a INTEGER) USING csv "
                      "OPTIONS (path people)")

    def test_duplicate_option_key(self, raw):
        with pytest.raises(ParseError, match="duplicate option"):
            raw.query("CREATE TABLE t (a INTEGER) USING csv "
                      "OPTIONS (path 'a.csv', path 'b.csv')")

    def test_no_columns_and_no_header_format(self, raw):
        with pytest.raises(CatalogError, match="cannot infer a schema"):
            raw.query("CREATE TABLE t USING csv "
                      "OPTIONS (path 'people.csv')")

    def test_drop_unknown_table(self, raw):
        with pytest.raises(CatalogError, match="unknown table"):
            raw.query("DROP TABLE ghost")

    def test_session_surfaces_programming_error(self, raw):
        """Through the DB-API layer the same failures arrive as
        ProgrammingError, not raw tracebacks."""
        session = repro.connect(engine=raw)
        with pytest.raises(ProgrammingError):
            session.execute("CREATE TABLE t (a INTEGER) USING parquet "
                            "OPTIONS (path 'people.csv')")
        with pytest.raises(ProgrammingError):
            session.execute("DROP TABLE ghost")

    def test_ddl_takes_no_parameters(self, raw):
        session = repro.connect(engine=raw)
        with pytest.raises(ProgrammingError, match="no parameters"):
            session.execute("SHOW TABLES", (1,))

    def test_heap_requires_buffer_pool(self, raw):
        with pytest.raises(CatalogError, match="buffer pool"):
            raw.query("CREATE TABLE t (a INTEGER) USING heap "
                      "OPTIONS (path 'people.csv')")

    def test_raw_formats_refused_by_loaded_engine(self, fs):
        db = LoadedDBMS(vfs=fs)
        with pytest.raises(CatalogError, match="in situ"):
            db.query(CREATE_PEOPLE)


class TestDropLifecycle:
    def test_drop_tears_down_auxiliary_state(self, raw):
        raw.query(CREATE_PEOPLE)
        raw.query("SELECT name FROM people WHERE age > 26")  # warm up
        positional_map = raw.positional_map_of("people")
        cache = raw.cache_of("people")
        assert positional_map.bytes_used > 0
        assert cache.bytes_used > 0
        raw.query("DROP TABLE people")
        assert positional_map.bytes_used == 0
        assert positional_map.known_line_count == 0
        assert cache.bytes_used == 0
        assert "people" not in raw.catalog

    def test_drop_detaches_prewarmer(self, raw):
        raw.query(CREATE_PEOPLE)
        prewarmer = raw.enable_fs_interface("people")
        assert prewarmer._attached
        raw.query("DROP TABLE people")
        assert not prewarmer._attached

    def test_drop_and_reregister_under_warm_cache(self, fs):
        """The warm-cache drop test: structures built by queries on the
        first incarnation are gone after DROP; a re-registered table
        with the same name starts cold and correct."""
        db = PostgresRaw(vfs=fs, config=PostgresRawConfig(row_block_size=2))
        db.query(CREATE_PEOPLE)
        warm = db.query("SELECT name FROM people WHERE age > 26")
        assert db.auxiliary_bytes("people")["cache"] > 0
        db.query("DROP TABLE people")
        db.query(CREATE_PEOPLE)
        assert db.auxiliary_bytes("people") == {"positional_map": 0,
                                                "cache": 0}
        cold = db.query("SELECT name FROM people WHERE age > 26")
        assert cold.rows == warm.rows
        # The re-registered table's first scan is cold again: it pays
        # newline discovery, which a warm map makes free.
        assert cold.counters.get("newline_scan", 0) > 0

    def test_drop_bumps_stats_epoch(self, raw):
        raw.query(CREATE_PEOPLE)
        raw.query("SELECT id FROM people")  # install statistics
        before = raw.catalog.stats_epoch
        raw.query("DROP TABLE people")
        assert raw.catalog.stats_epoch > before

    def test_prepared_statement_replans_after_drop_and_reregister(
            self, raw):
        """A plan cached before DROP must not keep scanning the old
        access method: the epoch bump forces a re-plan that binds the
        re-registered table's fresh structures."""
        session = repro.connect(engine=raw)
        session.execute(CREATE_PEOPLE)
        old_access = raw.catalog.get("people").access
        stmt = session.prepare("SELECT name FROM people WHERE age > 26")
        assert stmt.execute().fetchall() == [("alice",), ("carol",)]
        session.execute("DROP TABLE people")
        session.execute(CREATE_PEOPLE)
        replans_before = session.stats["replans"]
        assert stmt.execute().fetchall() == [("alice",), ("carol",)]
        assert session.stats["replans"] == replans_before + 1
        scan = stmt.planned.root
        while hasattr(scan, "child"):
            scan = scan.child
        assert scan.access is raw.catalog.get("people").access
        assert scan.access is not old_access

    def test_drop_under_live_warm_scan_fails_cleanly(self, fs):
        """A cursor navigating the positional map when its table is
        dropped surfaces a clean OperationalError on the next fetch —
        not an internal unpack crash, not silent wrong rows."""
        from repro.api.exceptions import OperationalError

        db = PostgresRaw(vfs=fs, config=PostgresRawConfig(row_block_size=2))
        db.query(CREATE_PEOPLE)
        db.query("SELECT id, name, age FROM people")  # build the map
        session = repro.connect(engine=db)
        cursor = session.execute("SELECT id FROM people")
        assert cursor.fetchone() == (1,)
        session.execute("DROP TABLE people")
        with pytest.raises(OperationalError, match="re-run the query"):
            while cursor.fetchone() is not None:
                pass
        cursor.close()

    def test_prepared_statement_fails_cleanly_after_plain_drop(self, raw):
        session = repro.connect(engine=raw)
        session.execute(CREATE_PEOPLE)
        stmt = session.prepare("SELECT name FROM people")
        assert len(stmt.execute().fetchall()) == 3
        session.execute("DROP TABLE people")
        with pytest.raises(ProgrammingError, match="unknown table"):
            stmt.execute()


class TestDeprecatedShims:
    def schema(self):
        return Schema([("id", INTEGER), ("name", varchar()),
                       ("age", INTEGER)])

    def test_register_csv_warns_and_routes_through_ddl(self, raw):
        with pytest.warns(DeprecationWarning, match="register_csv"):
            info = raw.register_csv("people", "people.csv", self.schema())
        assert info.format == "csv"  # built by the registry, not ad hoc
        assert raw.query("SELECT count(*) FROM people").scalar() == 3

    def test_add_file_warns_once_and_matches_register(self, raw):
        with pytest.warns(DeprecationWarning) as record:
            raw.add_file("people", "people.csv", self.schema())
        shim_warnings = [w for w in record
                         if issubclass(w.category, DeprecationWarning)]
        assert len(shim_warnings) == 1  # one warning, not one per layer
        assert raw.catalog.get("people").format == "csv"

    def test_external_register_csv_same_shim(self, fs):
        db = ExternalFilesDBMS(vfs=fs)
        with pytest.warns(DeprecationWarning, match="register_csv"):
            db.register_csv("people", "people.csv", self.schema())
        assert type(db.catalog.get("people").access).__name__ == \
            "ExternalAccess"

    def test_shim_and_ddl_results_identical(self, fs):
        via_shim = PostgresRaw(vfs=fs)
        with pytest.warns(DeprecationWarning):
            via_shim.register_csv("people", "people.csv", self.schema())
        via_ddl = PostgresRaw(vfs=VirtualFS())
        via_ddl.vfs.create("people.csv", PEOPLE)
        via_ddl.query(CREATE_PEOPLE)
        q = "SELECT name, age FROM people WHERE id <> 2 ORDER BY age"
        assert via_shim.query(q).rows == via_ddl.query(q).rows


class TestStatementKinds:
    def test_parse_returns_ddl_nodes(self):
        from repro.sql.ast_nodes import (
            CreateTable, DescribeTable, DropTable, ShowTables, is_ddl)

        create = parse(CREATE_PEOPLE)
        assert isinstance(create, CreateTable)
        assert create.format == "csv"
        assert create.options == {"path": "people.csv"}
        assert [c.name for c in create.columns] == ["id", "name", "age"]
        assert isinstance(parse("DROP TABLE t"), DropTable)
        assert isinstance(parse("SHOW TABLES"), ShowTables)
        assert isinstance(parse("DESCRIBE t;"), DescribeTable)
        for sql in (CREATE_PEOPLE, "DROP TABLE t", "SHOW TABLES"):
            assert is_ddl(parse(sql))
        assert not is_ddl(parse("SELECT 1 FROM t"))

    def test_session_prepare_returns_ddl_statement(self, raw):
        session = repro.connect(engine=raw)
        stmt = session.prepare(CREATE_PEOPLE)
        assert isinstance(stmt, DDLStatement)
        stmt.execute()
        assert raw.catalog.has("people")

    def test_ddl_not_statement_cached(self, raw):
        """Each execution of DDL text hits the live catalog — a CREATE
        re-run must raise duplicate, not silently reuse a cached no-op."""
        session = repro.connect(engine=raw)
        session.execute(CREATE_PEOPLE)
        hits_before = session.stats["statement_cache_hits"]
        with pytest.raises(ProgrammingError, match="already registered"):
            session.execute(CREATE_PEOPLE)
        assert session.stats["statement_cache_hits"] == hits_before

    def test_registry_is_open(self):
        assert {"csv", "fits", "heap", "jsonl"} <= set(available_formats())
        assert get_format("CSV").name == "csv"  # case-insensitive


class TestIfExistsGuards:
    """IF NOT EXISTS / IF EXISTS through the whole stack: lexer keyword,
    parser clause (with token positions on malformed input), and the
    session DDL path returning a skipped status instead of raising."""

    def test_create_if_not_exists_skips_duplicate(self, raw):
        raw.query(CREATE_PEOPLE)
        result = raw.query(
            "CREATE TABLE IF NOT EXISTS people (id INTEGER) "
            "USING csv OPTIONS (path 'people.csv')")
        assert result.rows == [("CREATE TABLE people skipped (exists)",)]
        # the original 3-column schema survives
        assert raw.catalog.get("people").schema.arity == 3

    def test_create_if_not_exists_creates_when_absent(self, raw):
        result = raw.query(
            "CREATE TABLE IF NOT EXISTS people (id INTEGER, "
            "name VARCHAR, age INTEGER) USING csv "
            "OPTIONS (path 'people.csv')")
        assert result.rows == [("CREATE TABLE people",)]
        assert raw.catalog.has("people")

    def test_drop_if_exists_skips_absent(self, raw):
        result = raw.query("DROP TABLE IF EXISTS nope")
        assert result.rows == [("DROP TABLE nope skipped (absent)",)]

    def test_drop_if_exists_drops_present(self, raw):
        raw.query(CREATE_PEOPLE)
        assert raw.query("DROP TABLE IF EXISTS people").rows == [
            ("DROP TABLE people",)]
        assert not raw.catalog.has("people")

    def test_drop_without_guard_still_raises(self, raw):
        with pytest.raises(CatalogError, match="unknown table"):
            raw.query("DROP TABLE nope")

    def test_session_path_honours_guards(self, raw):
        session = repro.connect(engine=raw)
        session.execute(CREATE_PEOPLE)
        cur = session.execute(
            "CREATE TABLE IF NOT EXISTS people (id INTEGER) "
            "USING csv OPTIONS (path 'people.csv')")
        assert cur.fetchone() == ("CREATE TABLE people skipped (exists)",)
        session.execute("DROP TABLE IF EXISTS people")
        cur = session.execute("DROP TABLE IF EXISTS people")
        assert cur.fetchone() == ("DROP TABLE people skipped (absent)",)

    def test_create_if_without_not_exists_positions_error(self, raw):
        sql = ("CREATE TABLE IF EXISTS people (id INTEGER) "
               "USING csv OPTIONS (path 'people.csv')")
        with pytest.raises(ParseError) as excinfo:
            raw.query(sql)
        assert "NOT EXISTS" in str(excinfo.value)
        assert excinfo.value.token.position == sql.index("EXISTS")

    def test_drop_if_without_exists_positions_error(self, raw):
        sql = "DROP TABLE IF people"
        with pytest.raises(ParseError) as excinfo:
            raw.query(sql)
        assert "EXISTS" in str(excinfo.value)
        assert excinfo.value.token.position == sql.index("people")
