"""Partitioned multi-file tables: pruning, determinism, differential.

The load-bearing invariants:

* **Oracle differential** — a partitioned table over N files returns
  byte-identical rows, auxiliary structures and (modulo the zero-priced
  ``files_scanned``/``files_pruned`` counters) identical costs as the
  same rows concatenated into one file, for predicates that cannot
  prune (every file's zone intersects), at any worker count.
* **Worker invariance** — results, per-file positional-map/cache dumps
  and every counter are bit-identical between 1 and 4 scan workers
  (PR-4's determinism contract lifted to file granularity).
* **Zone-map soundness** — pruning never changes results, only costs:
  NULL-heavy files, all-NULL files and unscanned files are handled by
  three-valued logic and the observed-every-row completeness gate.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.errors import CatalogError

from tests.test_batch_differential import cache_dump, pm_dump

TAGS = "abcdefgh"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def make_rows(n, seed=0, null_every=0):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        v = i * 10 + rng.randrange(10)
        if null_every and i % null_every == null_every - 1:
            rows.append((i, TAGS[i % len(TAGS)], None))
        else:
            rows.append((i, TAGS[i % len(TAGS)], v))
    return rows


def to_csv(rows):
    return "".join(
        f"{i},{t},{'' if v is None else v}\n" for i, t, v in rows
    ).encode()


def build(rows, files, workers=1, block=4):
    """A partitioned engine over ``files`` equal slices of ``rows``."""
    assert len(rows) % files == 0
    per = len(rows) // files
    vfs = VirtualFS()
    for f in range(files):
        vfs.create(f"ev-{f}.csv", to_csv(rows[f * per:(f + 1) * per]))
    db = PostgresRaw(vfs=vfs, config=PostgresRawConfig(
        scan_workers=workers, row_block_size=block))
    db.query("CREATE TABLE ev (id INTEGER, tag VARCHAR, v INTEGER) "
             "USING csv OPTIONS (path 'ev-*.csv')")
    return db


def build_oracle(rows, workers=1, block=4):
    vfs = VirtualFS()
    vfs.create("ev.csv", to_csv(rows))
    db = PostgresRaw(vfs=vfs, config=PostgresRawConfig(
        scan_workers=workers, row_block_size=block))
    db.query("CREATE TABLE ev (id INTEGER, tag VARCHAR, v INTEGER) "
             "USING csv OPTIONS (path 'ev.csv')")
    return db


def files_counters(result):
    return {k: v for k, v in result.counters.items()
            if k.startswith("files_")}


def core_counters(result):
    return {k: v for k, v in result.counters.items()
            if not k.startswith("files_")}


def parts_of(db, table="ev"):
    return db.catalog.get(table).access.parts


def child_dumps(db, table="ev"):
    return [(pm_dump(getattr(p.access, "pm", None)),
             cache_dump(getattr(p.access, "cache", None)))
            for p in parts_of(db, table)]


# ---------------------------------------------------------------------------
# Basics
# ---------------------------------------------------------------------------
class TestBasics:
    def test_glob_create_and_scan(self):
        db = build(make_rows(24), files=3)
        r = db.query("SELECT count(*) FROM ev")
        assert r.rows == [(24,)]
        assert files_counters(r) == {"files_scanned": 3}

    def test_rows_in_file_order(self):
        rows = make_rows(24)
        db = build(rows, files=3)
        got = db.query("SELECT id FROM ev").rows
        assert got == [(i,) for i, _, _ in rows]

    def test_explain_lists_files(self):
        db = build(make_rows(24), files=3)
        plan = "\n".join(r[0] for r in db.query(
            "EXPLAIN SELECT id FROM ev WHERE v > 0").rows)
        assert "PartitionedAccess" in plan
        assert "files=3" in plan

    def test_no_matching_files_is_catalog_error(self):
        db = PostgresRaw(vfs=VirtualFS())
        with pytest.raises(CatalogError, match="no files match"):
            db.query("CREATE TABLE t (a INTEGER) USING csv "
                     "OPTIONS (path 'missing-*.csv')")

    def test_explicit_partitioned_format(self):
        vfs = VirtualFS()
        vfs.create("a-1.csv", b"1\n")
        vfs.create("a-2.csv", b"2\n")
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE t (a INTEGER) USING partitioned "
                 "OPTIONS (path 'a-*.csv', format 'csv')")
        assert db.query("SELECT a FROM t ORDER BY a").rows == [(1,), (2,)]
        db.query("DROP TABLE t")

    def test_single_file_path_is_not_wrapped(self):
        vfs = VirtualFS()
        vfs.create("one.csv", b"1\n")
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE t (a INTEGER) USING csv "
                 "OPTIONS (path 'one.csv')")
        assert db.catalog.get("t").format == "csv"


# ---------------------------------------------------------------------------
# Zone-map pruning
# ---------------------------------------------------------------------------
class TestPruning:
    def test_warm_scan_prunes_after_zone_harvest(self):
        db = build(make_rows(80), files=10)
        sql = "SELECT id FROM ev WHERE v >= 730"
        cold = db.query(sql)
        assert files_counters(cold) == {"files_scanned": 10}
        warm = db.query(sql)
        assert warm.rows == cold.rows
        fc = files_counters(warm)
        assert fc["files_scanned"] <= 2
        assert fc["files_pruned"] >= 8

    def test_acceptance_over_80_percent_pruned_in_explain(self):
        # ISSUE acceptance: EXPLAIN + counters show >80% of files
        # pruned for a selective range predicate on a multi-file table.
        db = build(make_rows(80), files=10)
        db.query("SELECT id FROM ev WHERE v >= 0")  # harvest zones
        plan = "\n".join(r[0] for r in db.query(
            "EXPLAIN SELECT id FROM ev WHERE v >= 730").rows)
        assert "files=10" in plan
        assert "files_pruned=9" in plan
        r = db.query("SELECT id FROM ev WHERE v >= 730")
        assert files_counters(r)["files_pruned"] / 10 > 0.8

    def test_prune_all_returns_empty(self):
        db = build(make_rows(40), files=5)
        db.query("SELECT id FROM ev WHERE v >= 0")
        r = db.query("SELECT id FROM ev WHERE v > 100000")
        assert r.rows == []
        assert files_counters(r) == {"files_pruned": 5}

    def test_equality_and_between_prune(self):
        db = build(make_rows(40), files=5)
        db.query("SELECT id, v FROM ev")  # harvest zones for both
        r = db.query("SELECT id FROM ev WHERE v BETWEEN 90 AND 130")
        assert files_counters(r)["files_pruned"] >= 3
        r2 = db.query("SELECT id FROM ev WHERE id = 3")
        assert files_counters(r2) == {"files_scanned": 1,
                                      "files_pruned": 4}
        assert r2.rows == [(3,)]

    def test_pruning_never_changes_results(self):
        rows = make_rows(48, seed=7)
        part, oracle = build(rows, files=6), build_oracle(rows)
        for sql in ("SELECT id FROM ev WHERE v > 300",
                    "SELECT id FROM ev WHERE v <= 50 OR v >= 400",
                    "SELECT id FROM ev WHERE NOT (v < 250)",
                    "SELECT id FROM ev WHERE v IN (5, 105, 405)"):
            part.query("SELECT v FROM ev")  # keep zones warm
            assert part.query(sql).rows == oracle.query(sql).rows, sql

    def test_null_heavy_files_prune_soundly(self):
        rows = make_rows(48, null_every=3)
        part, oracle = build(rows, files=6), build_oracle(rows)
        part.query("SELECT v FROM ev")
        for sql in ("SELECT id FROM ev WHERE v > 380",
                    "SELECT id FROM ev WHERE v IS NULL",
                    "SELECT count(*) FROM ev WHERE NOT (v > 100)"):
            assert part.query(sql).rows == oracle.query(sql).rows, sql

    def test_all_null_file_is_pruned_for_comparisons(self):
        vfs = VirtualFS()
        vfs.create("n-1.csv", b"1,10\n2,20\n")
        vfs.create("n-2.csv", b"3,\n4,\n")  # v entirely NULL
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE t (id INTEGER, v INTEGER) USING csv "
                 "OPTIONS (path 'n-*.csv')")
        db.query("SELECT v FROM t")
        r = db.query("SELECT id FROM t WHERE v > 5")
        assert r.rows == [(1,), (2,)]
        assert files_counters(r) == {"files_scanned": 1,
                                     "files_pruned": 1}

    def test_partition_by_prunes_cold(self):
        vfs = VirtualFS()
        for day in ("2024-01-05", "2024-02-06", "2024-03-07"):
            vfs.create(f"pt-{day}.csv",
                       f"{day},1\n{day},2\n".encode())
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE pt (d DATE, x INTEGER) USING csv OPTIONS "
                 "(path 'pt-*.csv', partition_by 'd from filename')")
        # No file has ever been scanned: the filename key alone prunes.
        r = db.query("SELECT x FROM pt WHERE d = DATE '2024-02-06' "
                     "ORDER BY x")
        assert r.rows == [(1,), (2,)]
        assert files_counters(r) == {"files_scanned": 1,
                                     "files_pruned": 2}

    def test_partition_by_unknown_column_rejected(self):
        vfs = VirtualFS()
        vfs.create("pt-1.csv", b"1\n")
        db = PostgresRaw(vfs=vfs)
        with pytest.raises(CatalogError, match="partition_by"):
            db.query("CREATE TABLE pt (x INTEGER) USING csv OPTIONS "
                     "(path 'pt-*.csv', partition_by 'nope from "
                     "filename')")

    def test_partition_by_bad_spec_rejected(self):
        vfs = VirtualFS()
        vfs.create("pt-1.csv", b"1\n")
        db = PostgresRaw(vfs=vfs)
        with pytest.raises(CatalogError, match="from\\b"):
            db.query("CREATE TABLE pt (x INTEGER) USING csv OPTIONS "
                     "(path 'pt-*.csv', partition_by 'x by name')")


# ---------------------------------------------------------------------------
# Refresh: appended / rewritten / new files
# ---------------------------------------------------------------------------
class TestRefresh:
    def test_new_file_appears_on_next_query(self):
        rows = make_rows(24)
        db = build(rows, files=3)
        assert db.query("SELECT count(*) FROM ev").rows == [(24,)]
        db.vfs.create("ev-3.csv", to_csv(make_rows(8, seed=9)))
        assert db.query("SELECT count(*) FROM ev").rows == [(32,)]

    def test_append_invalidates_zone(self):
        db = build(make_rows(24), files=3)
        db.query("SELECT v FROM ev")  # harvest zones
        # Append a row far outside file 0's zone; a stale zone would
        # wrongly prune the file for this predicate.
        db.vfs.append_bytes("ev-0.csv", b"99,z,100000\n")
        r = db.query("SELECT id FROM ev WHERE v >= 100000")
        assert r.rows == [(99,)]

    def test_rewrite_invalidates_zone(self):
        db = build(make_rows(24), files=3)
        db.query("SELECT v FROM ev")
        db.vfs.write_bytes("ev-1.csv", b"50,z,999999\n")
        r = db.query("SELECT id FROM ev WHERE v = 999999")
        assert r.rows == [(50,)]


# ---------------------------------------------------------------------------
# Differential vs the single-file oracle (satellite 4)
# ---------------------------------------------------------------------------
PRUNE_ZERO = "SELECT tag, v FROM ev WHERE v >= 10 ORDER BY id"


class TestOracleDifferential:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_cold_warm_count_exact_cost_parity(self, workers):
        rows = make_rows(48, seed=3)
        oracle = build_oracle(rows)
        part = build(rows, files=6, workers=workers)
        for sql in (PRUNE_ZERO, PRUNE_ZERO,  # cold, then warm repeat
                    "SELECT count(*) FROM ev"):
            expected, got = oracle.query(sql), part.query(sql)
            assert got.rows == expected.rows
            assert core_counters(got) == core_counters(expected)
            assert math.isclose(got.elapsed, expected.elapsed,
                                rel_tol=1e-9)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_fuzz_rows_match_for_random_predicates(self, workers):
        for seed in range(8):
            rng = random.Random(100 + seed)
            rows = make_rows(48, seed=seed,
                             null_every=rng.choice([0, 0, 4]))
            oracle = build_oracle(rows)
            part = build(rows, files=rng.choice([2, 3, 6]),
                         workers=workers)
            for _ in range(4):
                lo = rng.randrange(0, 500)
                hi = lo + rng.randrange(0, 300)
                op = rng.choice([">", ">=", "<", "<=", "="])
                sql = rng.choice([
                    f"SELECT id, v FROM ev WHERE v {op} {lo} "
                    f"ORDER BY id",
                    f"SELECT count(*) FROM ev WHERE v BETWEEN {lo} "
                    f"AND {hi}",
                    f"SELECT tag FROM ev WHERE NOT (v {op} {lo}) "
                    f"ORDER BY id",
                ])
                assert part.query(sql).rows == oracle.query(sql).rows, \
                    (seed, workers, sql)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_prune_all_leg(self, workers):
        rows = make_rows(48, seed=5)
        oracle = build_oracle(rows)
        part = build(rows, files=6, workers=workers)
        part.query("SELECT v FROM ev")
        sql = "SELECT id FROM ev WHERE v > 100000"
        expected, got = oracle.query(sql), part.query(sql)
        assert got.rows == expected.rows == []
        assert files_counters(got) == {"files_pruned": 6}

    def test_structure_dumps_translate_to_oracle(self):
        # Files of 8 rows with row_block_size 4: child block b of file
        # f is oracle block 2*f + b, and child line starts shift by the
        # file's base byte offset. After identical full-column scans
        # the translated structures must match the oracle's exactly.
        rows = make_rows(48, seed=1)
        oracle = build_oracle(rows)
        part = build(rows, files=6)
        sql = "SELECT id, tag, v FROM ev WHERE v >= 10"
        oracle.query(sql)
        part.query(sql)
        odump = pm_dump(oracle.catalog.get("ev").access.pm)
        ocache = cache_dump(oracle.catalog.get("ev").access.cache)

        starts, length, chunks, directory, spilled, cache = \
            [], 0, {}, {}, {}, {}
        base_bytes, base_blocks = 0, 0
        for part_obj in parts_of(part):
            dump = pm_dump(part_obj.access.pm)
            cdump = cache_dump(part_obj.access.cache)
            starts.extend(s + base_bytes for s in dump["line_starts"])
            for (group, block), matrix in dump["chunks"].items():
                chunks[(group, block + base_blocks)] = matrix
            for block, entries in dump["directory"].items():
                directory[block + base_blocks] = {
                    attr: ((key[0], key[1] + base_blocks), col)
                    for attr, (key, col) in entries.items()}
            spilled.update({k + base_blocks: v
                            for k, v in dump["spilled"].items()})
            for (attr, block), payload in cdump.items():
                cache[(attr, block + base_blocks)] = payload
            base_bytes += dump["file_length"]
            base_blocks += dump["file_length"] and 2
            length = base_bytes
        assert starts == odump["line_starts"]
        assert length == odump["file_length"]
        assert chunks == odump["chunks"]
        assert directory == odump["directory"]
        assert spilled == odump["spilled"]
        assert cache == ocache


# ---------------------------------------------------------------------------
# Worker-count invariance (PR-4 contract at file granularity)
# ---------------------------------------------------------------------------
class TestWorkerInvariance:
    def test_results_counters_dumps_identical_1_vs_4(self):
        rows = make_rows(64, seed=2)
        runs = {}
        for workers in (1, 4):
            db = build(rows, files=8, workers=workers)
            out = []
            for sql in (PRUNE_ZERO, "SELECT count(*) FROM ev",
                        "SELECT id FROM ev WHERE v > 300 ORDER BY id"):
                r = db.query(sql)
                out.append((r.rows, dict(r.counters), r.elapsed))
            runs[workers] = (out, child_dumps(db))
        assert runs[1] == runs[4]
        # and the pool really was used for file fan-out
        db = build(rows, files=8, workers=4)
        db.query("SELECT count(*) FROM ev")
        assert db.scan_pool.tasks_submitted >= 8


# ---------------------------------------------------------------------------
# Other formats through the same wrapper
# ---------------------------------------------------------------------------
class TestOtherFormats:
    def test_partitioned_jsonl(self):
        vfs = VirtualFS()
        vfs.create("p-1.jsonl", b'{"a": 1, "b": "x"}\n{"a": 2, "b": "y"}\n')
        vfs.create("p-2.jsonl", b'{"a": 5, "b": "z"}\n')
        db = PostgresRaw(vfs=vfs)
        db.query("CREATE TABLE pj (a INTEGER, b VARCHAR) USING jsonl "
                 "OPTIONS (path 'p-*.jsonl')")
        assert db.query("SELECT a, b FROM pj ORDER BY a").rows == [
            (1, "x"), (2, "y"), (5, "z")]
        db.query("SELECT a FROM pj")  # harvest
        r = db.query("SELECT b FROM pj WHERE a > 3")
        assert r.rows == [("z",)]
        assert files_counters(r)["files_pruned"] == 1

    def test_drop_partitioned_table(self):
        db = build(make_rows(16), files=2)
        db.query("SELECT v FROM ev")
        assert db.query("DROP TABLE ev").rows == [("DROP TABLE ev",)]
        assert not db.catalog.has("ev")
