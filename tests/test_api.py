"""The repro.api session/cursor façade: prepared statements, parameter
binding, streaming fetch, EXPLAIN, exceptions, and the legacy shim."""

import datetime
import warnings

import pytest

import repro
from repro import PostgresRaw, PostgresRawConfig, QueryResult, VirtualFS
from repro.api import (
    InterfaceError,
    OperationalError,
    ProgrammingError,
)
from repro.errors import ReproError, UnknownColumnError
from repro.simcost.clock import CostEvent
from repro.workloads.micro import generate_micro_csv, micro_schema

from conftest import people_schema


@pytest.fixture
def session(people_vfs):
    db = PostgresRaw(vfs=people_vfs)
    db.register_csv("people", "people.csv", people_schema())
    with repro.connect(engine=db) as s:
        yield s


class TestSessionBasics:
    def test_connect_creates_engine_when_omitted(self):
        vfs = VirtualFS()
        vfs.create("t.csv", b"1\n2\n")
        s = repro.connect(vfs=vfs)
        assert isinstance(s.engine, PostgresRaw)
        s.register_csv("t", "t.csv", micro_schema(1))
        assert s.execute("SELECT a1 FROM t").fetchall() == [(1,), (2,)]

    def test_connect_rejects_vfs_with_explicit_engine(self, people_raw):
        with pytest.raises(InterfaceError):
            repro.connect(engine=people_raw, vfs=VirtualFS())

    def test_execute_matches_legacy_query(self, session):
        sql = "SELECT name, age FROM people WHERE age > 26 ORDER BY id"
        assert (session.execute(sql).fetchall()
                == session.engine.query(sql).rows)

    def test_fetchone_fetchmany_fetchall(self, session):
        cur = session.execute("SELECT id FROM people ORDER BY id")
        assert cur.fetchone() == (1,)
        assert cur.fetchmany(2) == [(2,), (3,)]
        assert cur.fetchall() == [(4,), (5,)]
        assert cur.fetchone() is None
        assert cur.fetchall() == []

    def test_cursor_iteration(self, session):
        cur = session.execute("SELECT id FROM people WHERE id <= 2")
        assert sorted(cur) == [(1,), (2,)]

    def test_description_and_rowcount(self, session):
        cur = session.execute("SELECT id, name FROM people")
        assert [d[0] for d in cur.description] == ["id", "name"]
        assert cur.rowcount == -1  # stream still open
        rows = cur.fetchall()
        assert cur.rowcount == len(rows) == 5

    def test_arraysize_default_fetchmany(self, session):
        cur = session.execute("SELECT id FROM people ORDER BY id")
        assert cur.fetchmany() == [(1,)]
        cur.arraysize = 3
        assert cur.fetchmany() == [(2,), (3,), (4,)]

    def test_session_query_returns_eager_result(self, session):
        result = session.query("SELECT count(*) FROM people")
        assert isinstance(result, QueryResult)
        assert result.scalar() == 5
        assert result.plan["op"] == "Project"
        assert result.counters  # the query's own cost ledger

    def test_closed_cursor_and_session_raise(self, session):
        cur = session.execute("SELECT id FROM people")
        cur.close()
        with pytest.raises(InterfaceError):
            cur.fetchone()
        session.close()
        with pytest.raises(InterfaceError):
            session.cursor()

    def test_fetch_before_execute_raises(self, session):
        with pytest.raises(InterfaceError):
            session.cursor().fetchone()

    def test_session_close_closes_cursors(self, people_raw):
        s = repro.connect(engine=people_raw)
        cur = s.execute("SELECT id FROM people")
        cur.fetchone()  # stream live
        s.close()
        assert cur.closed
        assert s not in people_raw.sessions
        # The live job was cancelled: no slot left occupied.
        assert people_raw.shared_scheduler().in_flight == 0

    def test_one_shot_cursors_do_not_accumulate(self, session):
        """A long-lived session doing execute().fetchone() per query
        must not pile up jobs or scheduler slots: fully consumed
        results are finished by the fetch probe."""
        for _ in range(10):
            row = session.execute("SELECT count(*) FROM people").fetchone()
            assert row == (5,)
        assert session._jobs == set()
        assert session.scheduler.in_flight == 0


class TestParameters:
    def test_qmark_binding(self, session):
        cur = session.execute(
            "SELECT name FROM people WHERE age = ? AND id < ?", (25, 5))
        assert sorted(cur.fetchall()) == [("bob",)]

    def test_string_and_date_params(self, session):
        assert session.execute(
            "SELECT id FROM people WHERE name = ?",
            ("carol",)).fetchall() == [(3,)]
        assert session.execute(
            "SELECT name FROM people WHERE birth < ?",
            (datetime.date(1995, 1, 1),)).fetchall() == [("carol",)]

    def test_wrong_param_count(self, session):
        with pytest.raises(ProgrammingError):
            session.execute("SELECT id FROM people WHERE age = ?", ())
        with pytest.raises(ProgrammingError):
            session.execute("SELECT id FROM people", (1,))

    def test_const_conjunct_parameter(self, session):
        sql = "SELECT count(*) FROM people WHERE ? = 1"
        assert session.execute(sql, (1,)).fetchone() == (5,)
        assert session.execute(sql, (2,)).fetchone() == (0,)

    def test_param_in_projection(self, session):
        cur = session.execute("SELECT id + ? FROM people WHERE id = 1",
                              (100,))
        assert cur.fetchone() == (101,)

    def test_const_conjunct_gate_evaluates_once(self, session):
        counters = session.engine.clock.counters
        sql = "SELECT count(*) FROM people WHERE ? = 1"
        # False gate: the scan below is never pulled — no tokenizing.
        tokenize_before = counters.get(CostEvent.TOKENIZE, 0)
        assert session.query(sql, (2,)).scalar() == 0
        assert counters.get(CostEvent.TOKENIZE, 0) == tokenize_before
        # True gate: the predicate is charged once per execution, not
        # once per row.
        predicate_before = counters.get(CostEvent.PREDICATE_EVAL, 0)
        assert session.query(sql, (1,)).scalar() == 5
        assert counters.get(CostEvent.PREDICATE_EVAL, 0) \
            == predicate_before + 1


class TestPreparedStatements:
    def test_reexecution_zero_parse_plan(self, session):
        stmt = session.prepare("SELECT name FROM people WHERE id = ?")
        assert stmt.execute((1,)).fetchall() == [("alice",)]
        clock = session.engine.clock
        overhead_before = clock.counters.get(CostEvent.QUERY_OVERHEAD, 0)
        parses_before = session.stats["parses"]
        plans_before = session.stats["plans"]
        assert stmt.execute((4,)).fetchall() == [("dave",)]
        assert stmt.execute((2,)).fetchall() == [("bob",)]
        # Zero parse/plan work: the per-query setup counter never moved
        # and the session performed no further parses or plans.
        assert clock.counters.get(CostEvent.QUERY_OVERHEAD, 0) \
            == overhead_before
        assert session.stats["parses"] == parses_before
        assert session.stats["plans"] == plans_before

    def test_statement_cache_hit_on_repeated_sql(self, session):
        sql = "SELECT id FROM people WHERE age = ?"
        session.execute(sql, (25,)).fetchall()
        hits_before = session.stats["statement_cache_hits"]
        parses_before = session.stats["parses"]
        session.execute(sql, (30,)).fetchall()
        assert session.stats["statement_cache_hits"] == hits_before + 1
        assert session.stats["parses"] == parses_before

    def test_statement_cache_lru_eviction(self, people_raw):
        s = repro.connect(engine=people_raw, statement_cache_size=2)
        for i in range(4):
            s.execute(f"SELECT id FROM people WHERE id = {i}").fetchall()
        assert len(s._statements) == 2

    def test_statement_cache_disabled(self, people_raw):
        s = repro.connect(engine=people_raw, statement_cache_size=0)
        sql = "SELECT id FROM people"
        s.execute(sql).fetchall()
        s.execute(sql).fetchall()
        assert s.stats["statement_cache_hits"] == 0
        assert s.stats["parses"] == 2

    def test_replan_on_stats_arrival(self, session):
        """§4.4 statistics are collected *during* the first execution —
        after the plan was frozen at prepare time. The statement must
        notice the catalog stats epoch moving and transparently
        re-plan (no re-parse, no query_overhead) exactly once."""
        engine = session.engine
        stmt = session.prepare("SELECT name FROM people WHERE id = ?")
        epoch_at_prepare = stmt.stats_epoch
        assert session.stats["replans"] == 0
        assert stmt.execute((1,)).fetchall() == [("alice",)]
        # The scan installed stats for id/name: the epoch moved.
        assert engine.catalog.stats_epoch > epoch_at_prepare
        overhead_before = engine.clock.counters.get(
            CostEvent.QUERY_OVERHEAD, 0)
        parses_before = session.stats["parses"]
        assert stmt.execute((2,)).fetchall() == [("bob",)]
        assert session.stats["replans"] == 1
        assert stmt.stats_epoch == engine.catalog.stats_epoch
        # Re-plan is not a re-prepare: no parse, no per-query overhead.
        assert session.stats["parses"] == parses_before
        assert engine.clock.counters.get(CostEvent.QUERY_OVERHEAD, 0) \
            == overhead_before
        # Stable epoch => no further re-plans.
        assert stmt.execute((3,)).fetchall() == [("carol",)]
        assert session.stats["replans"] == 1

    def test_replan_updates_cached_plan_for_explain(self, session):
        stmt = session.prepare("EXPLAIN SELECT count(*) FROM people "
                               "WHERE age > 30")
        stmt.execute(()).fetchall()
        # Execute the underlying shape so statistics arrive.
        session.query("SELECT count(*) FROM people WHERE age > 30")
        replans_before = session.stats["replans"]
        stmt.execute(()).fetchall()
        assert session.stats["replans"] == replans_before + 1

    def test_statement_cache_replan_is_transparent(self, session):
        """String-SQL execution through the statement cache re-plans
        too, and keeps returning correct rows."""
        sql = "SELECT name FROM people WHERE age >= ?"
        first = session.execute(sql, (30,)).fetchall()
        assert session.execute(sql, (30,)).fetchall() == first
        assert session.stats["replans"] >= 1

    def test_stats_epoch_monotone_across_table_drop(self, session):
        """Dropping a table must strictly advance the catalog epoch:
        plans cached before the drop re-plan on their next execution
        (binding a re-registered table's new access method, or failing
        cleanly), and later stats arrivals can never sum back to a
        previously seen value."""
        catalog = session.engine.catalog
        session.query("SELECT id, name FROM people")  # install stats
        before_drop = catalog.stats_epoch
        assert before_drop > 0
        catalog.drop("people")
        assert catalog.stats_epoch > before_drop

    def test_fully_consumed_result_allows_immediate_rebind(self, session):
        """The module-docstring pattern: an aggregate's single row is
        fetched, which drains the stream — the probe finishes the job
        so the very next execute with new parameters is not 'busy'."""
        stmt = session.prepare("SELECT count(*) FROM people WHERE id < ?")
        cur = stmt.execute((3,))
        assert cur.fetchone() == (2,)
        assert cur.rowcount == 1  # finished, not a zombie stream
        assert stmt.execute((6,)).fetchone() == (5,)

    def test_busy_statement_rejects_rebind(self, session):
        stmt = session.prepare("SELECT id FROM people WHERE id <> ?")
        cur = stmt.execute((1,))
        assert cur.fetchone() is not None  # stream live
        with pytest.raises(OperationalError):
            stmt.execute((2,))
        cur.close()
        assert stmt.execute((2,)).fetchall() == [(1,), (3,), (4,), (5,)]

    def test_string_sql_conflict_falls_back_to_private_plan(self, session):
        sql = "SELECT id FROM people WHERE id <> ?"
        c1 = session.execute(sql, (1,))
        assert c1.fetchone() == (2,)
        hits_before = session.stats["statement_cache_hits"]
        c2 = session.execute(sql, (2,))  # different params, c1 still live
        # The fallback pays a private parse/plan; it must not also be
        # reported as a statement-cache hit.
        assert session.stats["statement_cache_hits"] == hits_before
        assert c2.fetchall() == [(1,), (3,), (4,), (5,)]
        assert c1.fetchall() == [(3,), (4,), (5,)]

    def test_foreign_statement_rejected(self, session, people_raw):
        other = repro.connect(engine=people_raw)
        stmt = other.prepare("SELECT id FROM people")
        with pytest.raises(InterfaceError):
            session.cursor().execute(stmt)

    def test_executemany(self, session):
        cur = session.cursor()
        cur.executemany("SELECT name FROM people WHERE age = ?",
                        [(25,), (30,), (99,)])
        assert cur.rowcount == 3  # bob+erin, alice, nobody
        parses = session.stats["parses"]
        cur.executemany("SELECT name FROM people WHERE age = ?", [(35,)])
        assert cur.rowcount == 1
        assert session.stats["parses"] == parses  # prepared once


class TestStreaming:
    def make_session(self, rows=2000, block=64):
        vfs = VirtualFS()
        schema = generate_micro_csv(vfs, "m.csv", rows=rows, nattrs=6,
                                    seed=11)
        engine = PostgresRaw(
            config=PostgresRawConfig(row_block_size=block), vfs=vfs)
        engine.register_csv("m", "m.csv", schema)
        return repro.connect(engine=engine), engine

    def test_fetchmany_never_materializes_full_scan(self):
        session, engine = self.make_session()
        block = engine.stream_block_rows()
        cur = session.execute("SELECT a1, a2 FROM m")
        fetched = []
        while True:
            chunk = cur.fetchmany(10)
            if not chunk:
                break
            fetched.extend(chunk)
            # Never more than one scan block beyond the fetch request.
            assert cur.peak_buffered_rows <= block + 10
        assert len(fetched) == 2000
        assert cur.peak_buffered_rows <= block + 10
        assert fetched == engine.query("SELECT a1, a2 FROM m").rows

    def test_abandoned_stream_keeps_engine_usable(self):
        session, engine = self.make_session()
        cur = session.execute("SELECT a1 FROM m")
        cur.fetchmany(5)
        cur.close()  # abandon mid-scan: partial PM/cache state is fine
        assert session.query("SELECT count(*) FROM m").scalar() == 2000

    def test_streaming_result_matches_eager(self):
        session, engine = self.make_session(rows=500, block=32)
        sql = "SELECT a1 FROM m WHERE a2 < 500000000"
        streamed = list(session.execute(sql))
        assert streamed == engine.query(sql).rows

    def test_per_query_counters_sum_to_session(self):
        session, engine = self.make_session(rows=300, block=32)
        r1 = session.query("SELECT a1 FROM m")
        r2 = session.query("SELECT a2 FROM m WHERE a1 > 0")
        total = session.counters()
        for event, units in r1.counters.items():
            assert total.get(event, 0) >= units
        # Session ledger covers at least both queries' execution work.
        assert total["tuple_form"] >= (r1.counters.get("tuple_form", 0)
                                       + r2.counters.get("tuple_form", 0))
        assert session.elapsed() >= r1.elapsed + r2.elapsed - 1e-9


class TestExplain:
    def test_cursor_explain_rows_and_plan(self, session):
        cur = session.execute(
            "EXPLAIN SELECT name FROM people WHERE id = 2")
        assert [d[0] for d in cur.description] == ["QUERY PLAN"]
        lines = [row[0] for row in cur.fetchall()]
        assert any("Scan" in line and "people" in line for line in lines)
        assert cur.plan == session.engine.explain(
            "SELECT name FROM people WHERE id = 2")

    def test_legacy_query_explain(self, people_raw):
        result = people_raw.query("EXPLAIN SELECT count(*) FROM people")
        assert result.columns == ["QUERY PLAN"]
        assert any("Aggregate" in row[0] for row in result.rows)
        assert result.plan["op"] == "Project"

    def test_explain_executes_nothing(self, session):
        tokenize_before = session.engine.clock.counters.get(
            CostEvent.TOKENIZE, 0)
        session.execute("EXPLAIN SELECT name FROM people").fetchall()
        assert session.engine.clock.counters.get(CostEvent.TOKENIZE, 0) \
            == tokenize_before

    def test_explain_accepts_params(self, session):
        cur = session.execute("EXPLAIN SELECT id FROM people WHERE id = ?",
                              (1,))
        assert cur.fetchall()

    def test_explain_needs_no_params(self, session):
        # EXPLAIN never executes, so the plan of a parameterized
        # statement is inspectable without inventing dummy values.
        cur = session.execute("EXPLAIN SELECT id FROM people WHERE id = ?")
        assert any("Scan" in row[0] for row in cur.fetchall())


class TestErrors:
    def test_bad_sql_is_programming_error(self, session):
        with pytest.raises(ProgrammingError):
            session.execute("SELEC id FROM people")

    def test_unknown_table_is_programming_error(self, session):
        with pytest.raises(ProgrammingError):
            session.execute("SELECT x FROM nope")

    def test_api_errors_are_repro_errors(self, session):
        with pytest.raises(ReproError):
            session.execute("SELECT x FROM nope")

    def test_query_result_column_error_lists_columns(self):
        result = QueryResult(columns=["a", "b"], rows=[(1, 2)])
        with pytest.raises(UnknownColumnError) as err:
            result.column("zz")
        assert "zz" in str(err.value)
        assert "a, b" in str(err.value)
        assert err.value.available == ["a", "b"]

    def test_cursor_column_index_shares_error(self, session):
        cur = session.execute("SELECT id, name FROM people")
        assert cur.column_index("name") == 1
        with pytest.raises(UnknownColumnError) as err:
            cur.column_index("zz")
        assert err.value.available == ["id", "name"]

    def test_execution_error_surfaces_at_fetch(self, session):
        cur = session.execute("SELECT 1 / (id - 1) FROM people")
        with pytest.raises(repro.api.OperationalError):
            cur.fetchall()

    def test_failed_execute_detaches_previous_result(self, session):
        cur = session.execute("SELECT id FROM people ORDER BY id")
        assert cur.fetchone() == (1,)
        with pytest.raises(ProgrammingError):
            cur.execute("SELEC bogus")
        # The old stream must be gone, not silently served.
        with pytest.raises(InterfaceError):
            cur.fetchone()
        assert cur.description is None

    def test_plain_python_error_maps_and_fails_job(self, session):
        # '<' between int column and str parameter raises a plain
        # TypeError inside evaluation; it must surface as a DB-API
        # error and the job must be failed, not quietly "finished".
        cur = session.execute("SELECT id FROM people WHERE id < ?",
                              ("oops",))
        with pytest.raises(repro.api.OperationalError):
            cur.fetchall()
        with pytest.raises(repro.api.OperationalError):
            cur.fetchone()  # still failed on retry
        assert cur.rowcount == -1

    def test_victim_failure_not_raised_to_driving_cursor(self, people_raw):
        s = repro.connect(engine=people_raw, max_in_flight=1)
        bad = s.execute("SELECT id FROM people WHERE id < ?", ("oops",))
        good = s.execute("SELECT id FROM people")  # queued behind bad
        # Fetching the queued query drives (and fails) the victim; the
        # failure belongs to the victim's cursor only.
        assert len(good.fetchall()) == 5
        with pytest.raises(repro.api.OperationalError):
            bad.fetchall()


class TestLegacyShim:
    def test_database_execute_deprecated_alias(self, people_raw):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = people_raw.execute("SELECT id FROM people WHERE id = 1")
        assert result.rows == [(1,)]
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_query_still_primary(self, people_raw):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # query() must not warn
            assert people_raw.query("SELECT count(*) FROM people"
                                    ).scalar() == 5
