"""Tests for the CSV tokenizing primitives, incl. hypothesis properties."""

import csv as stdlib_csv
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CSVFormatError
from repro.formats.csvfmt import (
    CsvDialect,
    LineReader,
    field_spans_prefix,
    find_line_starts,
    span_backward,
    span_forward,
    split_line,
    write_csv,
)
from repro.simcost.model import CostModel
from repro.storage.vfs import VirtualFS

LINE = b"alpha,bravo,charlie,delta,echo"
#       0     6     12      20    26


def fields_from_spans(line, spans):
    return [line[s:e] for s, e in spans]


class TestSplitLine:
    def test_all_fields(self):
        spans, scanned = split_line(LINE)
        assert fields_from_spans(LINE, spans) == [
            b"alpha", b"bravo", b"charlie", b"delta", b"echo"]
        assert scanned == len(LINE)

    def test_empty_fields(self):
        spans, _ = split_line(b",,x,")
        assert fields_from_spans(b",,x,", spans) == [b"", b"", b"x", b""]

    def test_single_field(self):
        spans, _ = split_line(b"only")
        assert fields_from_spans(b"only", spans) == [b"only"]

    def test_empty_line_is_one_empty_field(self):
        spans, _ = split_line(b"")
        assert fields_from_spans(b"", spans) == [b""]

    def test_nul_byte_rejected(self):
        with pytest.raises(CSVFormatError):
            split_line(b"a\x00b")

    def test_custom_delimiter(self):
        spans, _ = split_line(b"a|b|c", CsvDialect(b"|"))
        assert fields_from_spans(b"a|b|c", spans) == [b"a", b"b", b"c"]


class TestSelectiveTokenizing:
    def test_prefix_stops_early(self):
        spans, scanned = field_spans_prefix(LINE, 1)
        assert fields_from_spans(LINE, spans) == [b"alpha", b"bravo"]
        # Scanned through bravo's trailing delimiter only — the §4.1
        # claim: fewer characters examined than the full line.
        assert scanned == 12
        assert scanned < len(LINE)

    def test_prefix_to_last_attr_scans_all(self):
        spans, scanned = field_spans_prefix(LINE, 4)
        assert len(spans) == 5
        assert scanned == len(LINE)

    def test_prefix_beyond_arity_raises(self):
        with pytest.raises(CSVFormatError):
            field_spans_prefix(LINE, 7)

    def test_prefix_zero(self):
        spans, scanned = field_spans_prefix(LINE, 0)
        assert fields_from_spans(LINE, spans) == [b"alpha"]
        assert scanned == 6


class TestIncrementalParsing:
    def test_forward_from_known_start(self):
        # bravo starts at offset 6; walk 2 attributes forward.
        spans, scanned = span_forward(LINE, 6, 2)
        assert fields_from_spans(LINE, spans) == [
            b"bravo", b"charlie", b"delta"]
        assert scanned == 20  # through delta's trailing delimiter (26-6)

    def test_forward_zero_steps_finds_own_end(self):
        spans, scanned = span_forward(LINE, 12, 0)
        assert fields_from_spans(LINE, spans) == [b"charlie"]

    def test_forward_to_line_end(self):
        spans, _ = span_forward(LINE, 26, 0)
        assert fields_from_spans(LINE, spans) == [b"echo"]

    def test_forward_overrun_raises(self):
        with pytest.raises(CSVFormatError):
            span_forward(LINE, 26, 2)

    def test_backward_from_known_start(self):
        # delta starts at 20; walk 2 attributes backward.
        spans, scanned = span_backward(LINE, 20, 2)
        assert fields_from_spans(LINE, spans) == [b"bravo", b"charlie"]
        assert scanned > 0

    def test_backward_one_step(self):
        spans, _ = span_backward(LINE, 6, 1)
        assert fields_from_spans(LINE, spans) == [b"alpha"]

    def test_backward_to_line_start(self):
        spans, _ = span_backward(LINE, 20, 3)
        assert fields_from_spans(LINE, spans) == [
            b"alpha", b"bravo", b"charlie"]

    def test_backward_overrun_raises(self):
        with pytest.raises(CSVFormatError):
            span_backward(LINE, 6, 2)

    def test_backward_zero_steps(self):
        assert span_backward(LINE, 20, 0) == ([], 0)

    def test_backward_cheaper_than_full_prefix(self):
        # Reaching attr 3 backward from attr 4 scans fewer chars than
        # tokenizing the prefix 0..3 — the §4.2 bidirectional win.
        _, scanned_back = span_backward(LINE, 26, 1)
        _, scanned_prefix = field_spans_prefix(LINE, 3)
        assert scanned_back < scanned_prefix


class TestFindLineStarts:
    def test_basic(self):
        starts, scanned = find_line_starts(b"ab\ncd\nef")
        assert starts == [3, 6]
        assert scanned == 8

    def test_with_base_offset(self):
        starts, _ = find_line_starts(b"ab\ncd\n", base_offset=100)
        assert starts == [103, 106]

    def test_no_newlines(self):
        assert find_line_starts(b"abcdef")[0] == []


class TestLineReader:
    def test_yields_lines_with_offsets(self):
        vfs = VirtualFS()
        vfs.create("f", b"one\ntwo\nthree\n")
        reader = LineReader(vfs.open("f", CostModel()))
        assert list(reader) == [(0, b"one"), (4, b"two"), (8, b"three")]

    def test_lines_spanning_blocks(self):
        vfs = VirtualFS()
        payload = b"\n".join(f"row-{i:05d}".encode() for i in range(1000))
        vfs.create("f", payload + b"\n")
        reader = LineReader(vfs.open("f", CostModel()), block_size=64)
        lines = list(reader)
        assert len(lines) == 1000
        assert lines[500] == (500 * 10, b"row-00500")

    def test_unterminated_final_line(self):
        vfs = VirtualFS()
        vfs.create("f", b"a\nb")  # no trailing newline
        reader = LineReader(vfs.open("f", CostModel()))
        assert list(reader) == [(0, b"a"), (2, b"b")]

    def test_start_offset(self):
        vfs = VirtualFS()
        vfs.create("f", b"one\ntwo\nthree\n")
        reader = LineReader(vfs.open("f", CostModel()), start_offset=4)
        assert list(reader) == [(4, b"two"), (8, b"three")]

    def test_chars_scanned_counts_whole_read(self):
        vfs = VirtualFS()
        vfs.create("f", b"one\ntwo\n")
        reader = LineReader(vfs.open("f", CostModel()))
        list(reader)
        assert reader.chars_scanned == 8

    def test_empty_file(self):
        vfs = VirtualFS()
        vfs.create("f", b"")
        assert list(LineReader(vfs.open("f", CostModel()))) == []


class TestWriteCsv:
    def test_roundtrip_with_split(self):
        rows = [["a", "b"], ["1", "2"]]
        data = write_csv(rows)
        lines = data.split(b"\n")[:-1]
        parsed = [fields_from_spans(l, split_line(l)[0]) for l in lines]
        assert parsed == [[b"a", b"b"], [b"1", b"2"]]

    def test_rejects_embedded_delimiter(self):
        with pytest.raises(CSVFormatError):
            write_csv([["a,b"]])

    def test_rejects_embedded_newline(self):
        with pytest.raises(CSVFormatError):
            write_csv([["a\nb"]])

    def test_empty_input(self):
        assert write_csv([]) == b""


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
# '"' excluded: stdlib csv applies quoting rules to it; our dialect is
# quote-free by design (see csvfmt module docstring).
field_text = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters=[",", "\n", "\r", "\x00", '"']),
    max_size=12)
csv_rows = st.lists(
    st.lists(field_text, min_size=1, max_size=8), min_size=1, max_size=20,
).filter(lambda rows: len({len(r) for r in rows}) == 1).filter(
    # stdlib csv parses a blank line as [] instead of ['']; exclude the
    # single-empty-field row where the two conventions diverge.
    lambda rows: all(r != [""] for r in rows))


class TestProperties:
    @given(csv_rows)
    @settings(max_examples=60)
    def test_split_line_agrees_with_stdlib_csv(self, rows):
        data = write_csv(rows).decode()
        parsed_stdlib = list(stdlib_csv.reader(io.StringIO(data)))
        our = []
        for line in data.encode().split(b"\n")[:-1]:
            spans, _ = split_line(line)
            our.append([line[s:e].decode() for s, e in spans])
        assert our == parsed_stdlib

    @given(st.lists(field_text, min_size=2, max_size=10), st.data())
    @settings(max_examples=60)
    def test_prefix_equals_full_split_prefix(self, fields, data):
        line = ",".join(fields).encode()
        upto = data.draw(st.integers(0, len(fields) - 1))
        full, _ = split_line(line)
        prefix, scanned = field_spans_prefix(line, upto)
        assert prefix == full[:upto + 1]
        assert scanned <= len(line)

    @given(st.lists(field_text, min_size=2, max_size=10), st.data())
    @settings(max_examples=60)
    def test_forward_matches_full_split(self, fields, data):
        line = ",".join(fields).encode()
        full, _ = split_line(line)
        base = data.draw(st.integers(0, len(fields) - 1))
        steps = data.draw(st.integers(0, len(fields) - 1 - base))
        spans, _ = span_forward(line, full[base][0], steps)
        assert spans == full[base:base + steps + 1]

    @given(st.lists(field_text, min_size=2, max_size=10), st.data())
    @settings(max_examples=60)
    def test_backward_matches_full_split(self, fields, data):
        line = ",".join(fields).encode()
        full, _ = split_line(line)
        known = data.draw(st.integers(1, len(fields) - 1))
        steps = data.draw(st.integers(1, known))
        spans, _ = span_backward(line, full[known][0], steps)
        assert spans == full[known - steps:known]

    @given(csv_rows)
    @settings(max_examples=40)
    def test_line_reader_reconstructs_file(self, rows):
        data = write_csv(rows)
        vfs = VirtualFS()
        vfs.create("f", data)
        reader = LineReader(vfs.open("f", CostModel()), block_size=7)
        reconstructed = b"".join(line + b"\n" for _, line in reader)
        assert reconstructed == data
        for offset, line in LineReader(vfs.open("f", CostModel()),
                                       block_size=7):
            assert data[offset:offset + len(line)] == line
