"""Differential fuzz harness: batch scan vs scalar scan vs loaded DBMS.

Seeded random schemas (ints, floats, strings, dates), random data
(NULLs as empty fields, quote characters inside strings, ragged field
widths) and random SELECT/WHERE workloads run on three engines:

* PostgresRaw in **batch mode** (the vectorized pipeline under test),
* PostgresRaw in **scalar mode** (the row-at-a-time oracle),
* LoadedDBMS (the conventional engine — ground truth via a completely
  independent code path).

All three must agree on every result set, and after every query the
batch and scalar engines must hold byte-identical positional maps and
binary caches — the contract that lets the scalar path vouch for the
vectorized one.
"""

import random

import pytest

from repro import (
    DATE,
    FLOAT,
    INTEGER,
    LoadedDBMS,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)
from repro.formats.csvfmt import write_csv

_LETTERS = "abcdefghij'\" _-"


# ---------------------------------------------------------------------------
# Structure dumps (shared with the eviction tests)
# ---------------------------------------------------------------------------
def pm_dump(pm):
    """Everything observable about a positional map's contents."""
    if pm is None:
        return None
    return {
        "line_starts": list(pm._line_starts),
        "file_length": pm._file_length,
        "chunks": {key: matrix.tolist()
                   for key, matrix in pm._chunks.items()},
        "directory": {block: dict(entries)
                      for block, entries in pm._directory.items()},
        "spilled": dict(pm._spilled),
    }


def cache_dump(cache):
    """Every cache block's mask and values (bytes too)."""
    if cache is None:
        return None
    return {
        key: (list(block.mask), list(block.values), block.bytes_used)
        for key, block in cache._blocks.items()
    }


def assert_structures_match(raw_batch, raw_scalar, table="t"):
    assert pm_dump(raw_batch.positional_map_of(table)) == \
        pm_dump(raw_scalar.positional_map_of(table))
    assert cache_dump(raw_batch.cache_of(table)) == \
        cache_dump(raw_scalar.cache_of(table))


# ---------------------------------------------------------------------------
# Random schema / data / query generation
# ---------------------------------------------------------------------------
def random_schema(rng: random.Random) -> Schema:
    kinds = [INTEGER, FLOAT, varchar(), DATE]
    ncols = rng.randint(3, 7)
    return Schema([
        (f"c{i}", rng.choice(kinds)) for i in range(ncols)
    ])


def random_text_value(rng: random.Random, dtype, nullable: bool) -> str:
    if nullable and dtype.family != "str" and rng.random() < 0.15:
        return ""  # NULL
    family = dtype.family
    if family == "int":
        return str(rng.randrange(-10_000, 10_000))
    if family == "float":
        return f"{rng.uniform(-1000, 1000):.{rng.randint(0, 6)}f}"
    if family == "date":
        return (f"{rng.randint(1990, 2030):04d}-"
                f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")
    # Ragged widths, quote characters, leading/trailing spaces.
    width = rng.randint(0, 12)
    return "".join(rng.choice(_LETTERS) for _ in range(width))


def random_table(rng: random.Random, schema: Schema) -> list[list[str]]:
    nrows = rng.randint(0, 120)
    return [[random_text_value(rng, col.dtype, nullable=True)
             for col in schema.columns]
            for _ in range(nrows)]


def random_query(rng: random.Random, schema: Schema) -> str:
    columns = schema.columns
    projected = rng.sample([c.name for c in columns],
                           rng.randint(1, len(columns)))
    if rng.random() < 0.15:
        select = "count(*)"
    else:
        select = ", ".join(projected)
    sql = f"SELECT {select} FROM t"
    if rng.random() < 0.7:
        numeric = [c for c in columns if c.dtype.family in ("int", "float")]
        terms = []
        for _ in range(rng.randint(1, 2)):
            form = rng.random()
            if numeric and form < 0.75:
                col = rng.choice(numeric)
                if rng.random() < 0.3:
                    lo, hi = sorted((rng.randint(-8000, 8000),
                                     rng.randint(-8000, 8000)))
                    terms.append(f"{col.name} BETWEEN {lo} AND {hi}")
                else:
                    op = rng.choice(["<", "<=", ">", ">=", "=", "<>"])
                    terms.append(
                        f"{col.name} {op} {rng.randint(-8000, 8000)}")
            else:
                strings = [c for c in columns if c.dtype.family == "str"]
                if not strings:
                    continue
                col = rng.choice(strings)
                literal = random_text_value(rng, col.dtype, nullable=False)
                literal = literal.replace("'", "''")
                terms.append(f"{col.name} <> '{literal}'")
        if terms:
            sql += " WHERE " + " AND ".join(terms)
    return sql


# ---------------------------------------------------------------------------
# Engine construction
# ---------------------------------------------------------------------------
def build_engines(schema: Schema, rows: list[list[str]],
                  block_size: int, **config_kwargs):
    payload = write_csv(rows)

    def fresh_vfs():
        vfs = VirtualFS()
        vfs.create("t.csv", payload)
        return vfs

    raw_batch = PostgresRaw(
        config=PostgresRawConfig(row_block_size=block_size,
                                 batch_mode=True, **config_kwargs),
        vfs=fresh_vfs())
    raw_batch.register_csv("t", "t.csv", schema)
    raw_scalar = PostgresRaw(
        config=PostgresRawConfig(row_block_size=block_size,
                                 batch_mode=False, **config_kwargs),
        vfs=fresh_vfs())
    raw_scalar.register_csv("t", "t.csv", schema)
    loaded = LoadedDBMS(vfs=fresh_vfs())
    loaded.load_csv("t", "t.csv", schema)
    return raw_batch, raw_scalar, loaded


def normalized(result):
    return sorted(map(repr, result.rows))


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------
class TestBatchDifferentialFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_workloads_agree_across_engines(self, seed):
        rng = random.Random(1000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        block_size = rng.choice([1, 3, 8, 17, 64])
        raw_batch, raw_scalar, loaded = build_engines(schema, rows,
                                                      block_size)
        for qno in range(6):
            sql = random_query(rng, schema)
            res_batch = raw_batch.query(sql)
            res_scalar = raw_scalar.query(sql)
            res_loaded = loaded.query(sql)
            assert normalized(res_batch) == normalized(res_scalar), \
                f"seed={seed} q{qno}: batch != scalar for {sql!r}"
            assert normalized(res_batch) == normalized(res_loaded), \
                f"seed={seed} q{qno}: batch != loaded for {sql!r}"
            # The core contract: identical auxiliary-structure contents.
            assert_structures_match(raw_batch, raw_scalar)

    @pytest.mark.parametrize("seed", range(6))
    def test_structures_match_without_cache(self, seed):
        rng = random.Random(5000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        raw_batch, raw_scalar, loaded = build_engines(
            schema, rows, rng.choice([2, 5, 16]), enable_cache=False)
        for _ in range(4):
            sql = random_query(rng, schema)
            assert normalized(raw_batch.query(sql)) == \
                normalized(raw_scalar.query(sql)) == \
                normalized(loaded.query(sql)), sql
            assert_structures_match(raw_batch, raw_scalar)

    @pytest.mark.parametrize("seed", range(6))
    def test_structures_match_without_positional_map(self, seed):
        rng = random.Random(7000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        raw_batch, raw_scalar, loaded = build_engines(
            schema, rows, rng.choice([2, 5, 16]),
            enable_positional_map=False)
        for _ in range(4):
            sql = random_query(rng, schema)
            assert normalized(raw_batch.query(sql)) == \
                normalized(raw_scalar.query(sql)) == \
                normalized(loaded.query(sql)), sql
            assert_structures_match(raw_batch, raw_scalar)

    @pytest.mark.parametrize("seed", range(9000, 9012))
    def test_free_info_coverage_shapes(self, seed):
        """Regression: multi-conjunct WHERE whose locate path reaches
        max_where via an already-known start must NOT record the
        max_where+1 free position for failing rows (the scalar path
        doesn't) — caught by review on this seed universe."""
        rng = random.Random(seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        raw_batch, raw_scalar, loaded = build_engines(
            schema, rows, rng.choice([1, 3, 8, 17, 64]))
        for _ in range(6):
            sql = random_query(rng, schema)
            assert normalized(raw_batch.query(sql)) == \
                normalized(raw_scalar.query(sql)) == \
                normalized(loaded.query(sql)), sql
            assert_structures_match(raw_batch, raw_scalar)

    def test_pm_free_info_matches_scalar_exactly(self):
        """The distilled shape: WHERE on c0 AND c1 (so c1 is located
        via c0's one-step-forward memo, leaving no free c2 start) with
        c2 projected; failing rows must store positions for {1} only,
        not {1, 2}."""
        schema = Schema([("c0", INTEGER), ("c1", INTEGER),
                         ("c2", INTEGER)])
        rows = [[str(i), str(i * 10), str(i * 100)] for i in range(20)]
        raw_batch, raw_scalar, _ = build_engines(schema, rows, 4)
        sql = "SELECT c2 FROM t WHERE c0 >= 5 AND c1 < 120"
        assert normalized(raw_batch.query(sql)) == \
            normalized(raw_scalar.query(sql))
        assert_structures_match(raw_batch, raw_scalar)
        # And a shape where the free start IS recorded (single-term
        # WHERE locates c1 forward from the line start, discovering
        # c2's start on the way for every row).
        raw_batch2, raw_scalar2, _ = build_engines(schema, rows, 4)
        sql2 = "SELECT c2 FROM t WHERE c1 < 120"
        assert normalized(raw_batch2.query(sql2)) == \
            normalized(raw_scalar2.query(sql2))
        assert_structures_match(raw_batch2, raw_scalar2)

    @pytest.mark.parametrize("seed", range(8))
    def test_cold_scan_counter_parity(self, seed):
        """A cold scan runs entirely in the streaming region, where the
        batch path replays the scalar locate-state machine: every cost
        counter — tokenize included — must match exactly."""
        rng = random.Random(20000 + seed)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        raw_batch, raw_scalar, _ = build_engines(
            schema, rows, rng.choice([1, 4, 16]))
        sql = random_query(rng, schema)
        counters_batch = raw_batch.query(sql).counters
        counters_scalar = raw_scalar.query(sql).counters
        assert counters_batch == counters_scalar, sql

    def test_statistics_collection_identical(self):
        """The §4.4 reservoir samples must be fed the same values in
        the same order on both paths (same seed => same sample)."""
        rng = random.Random(99)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        raw_batch, raw_scalar, _ = build_engines(schema, rows, 16)
        for sql in [random_query(rng, schema) for _ in range(5)]:
            raw_batch.query(sql)
            raw_scalar.query(sql)
        stats_b = raw_batch.catalog.get("t").stats
        stats_s = raw_scalar.catalog.get("t").stats
        if stats_b is None:
            assert stats_s is None
            return
        assert stats_b.row_count == stats_s.row_count
        for col in schema.columns:
            cb = stats_b.column(col.name)
            cs = stats_s.column(col.name)
            assert (cb is None) == (cs is None), col.name
            if cb is not None:
                assert cb.__dict__ == cs.__dict__, col.name

    def test_interleaved_partial_scans_converge(self):
        """Abandoned generators (LIMIT-style) leave valid partial
        structures on both paths. The granularity differs — the batch
        path flushes whole blocks before yielding their first row, the
        scalar path stops mid-block — so the partial states need not be
        identical; but results must stay correct throughout, and once a
        scan runs to completion the structures must converge exactly."""
        rng = random.Random(4242)
        schema = random_schema(rng)
        rows = random_table(rng, schema)
        while len(rows) < 40:  # ensure enough rows to abandon mid-scan
            rows = random_table(rng, schema)
        raw_batch, raw_scalar, loaded = build_engines(schema, rows, 8)
        access_b = raw_batch.catalog.get("t").access
        access_s = raw_scalar.catalog.get("t").access
        for stop in (1, 7, 19):
            first_b = first_s = None
            for access, out in ((access_b, "b"), (access_s, "s")):
                gen = access.scan([0, 1], None)
                got = [next(gen) for _ in range(stop)]
                gen.close()
                if out == "b":
                    first_b = got
                else:
                    first_s = got
            assert first_b == first_s, f"prefix diverged at stop={stop}"
        sql = "SELECT c0, c1 FROM t"
        assert normalized(raw_batch.query(sql)) == \
            normalized(raw_scalar.query(sql)) == \
            normalized(loaded.query(sql))
        assert_structures_match(raw_batch, raw_scalar)
