"""Tests for the bulk loader, LoadedDBMS, and ExternalFilesDBMS."""

import pytest

from repro import (
    CSV_ENGINE_PROFILE,
    DBMS_X_PROFILE,
    ExternalFilesDBMS,
    LoadedDBMS,
    VirtualFS,
)
from repro.errors import CSVFormatError
from repro.simcost.clock import CostEvent
from repro.simcost.model import CostModel
from repro.storage.loader import BulkLoader
from repro.workloads.micro import generate_micro_csv, micro_schema
from tests.conftest import PEOPLE_CSV, people_schema


class TestBulkLoader:
    def test_load_produces_queryable_heap(self, people_vfs):
        db = LoadedDBMS(vfs=people_vfs)
        elapsed = db.load_csv("people", "people.csv", people_schema())
        assert elapsed > 0
        assert db.query("SELECT count(*) FROM people").scalar() == 5

    def test_load_charges_full_conversion(self, people_vfs):
        model = CostModel()
        loader = BulkLoader(people_vfs, model)
        rows, _ = loader.load("people.csv", "people.heap", people_schema())
        assert rows == 5
        # Every attribute of every row converted: 2 ints per row.
        assert model.count(CostEvent.CONVERT_INT) == 10
        assert model.count(CostEvent.CONVERT_FLOAT) == 5
        assert model.count(CostEvent.CONVERT_DATE) == 5
        assert model.count(CostEvent.SERIALIZE) == 25
        assert model.count(CostEvent.DISK_WRITE) > 0

    def test_load_builds_statistics(self, people_vfs):
        db = LoadedDBMS(vfs=people_vfs)
        db.load_csv("people", "people.csv", people_schema())
        stats = db.catalog.get("people").stats
        assert stats.row_count == 5
        assert stats.column("age").min_value == 25
        assert stats.column("age").max_value == 35

    def test_load_rejects_ragged_rows(self, vfs):
        vfs.create("bad.csv", b"1,2\n3\n")
        loader = BulkLoader(vfs, CostModel())
        with pytest.raises(CSVFormatError):
            loader.load("bad.csv", "bad.heap", micro_schema(2))

    def test_reload_overwrites(self, people_vfs):
        model = CostModel()
        loader = BulkLoader(people_vfs, model)
        loader.load("people.csv", "p.heap", people_schema())
        rows, _ = loader.load("people.csv", "p.heap", people_schema())
        assert rows == 5


class TestLoadedDBMS:
    def test_load_time_on_engine_clock(self, people_vfs):
        db = LoadedDBMS(vfs=people_vfs)
        elapsed = db.load_csv("people", "people.csv", people_schema())
        assert db.elapsed() == pytest.approx(elapsed)

    def test_queries_do_not_reconvert(self, people_vfs):
        db = LoadedDBMS(vfs=people_vfs)
        db.load_csv("people", "people.csv", people_schema())
        conversions = db.model.count(CostEvent.CONVERT_INT)
        db.query("SELECT age FROM people")
        assert db.model.count(CostEvent.CONVERT_INT) == conversions
        assert db.model.count(CostEvent.DESERIALIZE) > 0

    def test_buffer_pool_warms_up(self, people_vfs):
        db = LoadedDBMS(vfs=people_vfs)
        db.load_csv("people", "people.csv", people_schema())
        db.query("SELECT age FROM people")
        misses_first = db.pool.misses
        db.query("SELECT age FROM people")
        assert db.pool.misses == misses_first
        assert db.pool.hits > 0

    def test_restart_clears_buffer_pool(self, people_vfs):
        db = LoadedDBMS(vfs=people_vfs)
        db.load_csv("people", "people.csv", people_schema())
        db.query("SELECT age FROM people")
        db.restart()
        misses = db.pool.misses
        db.query("SELECT age FROM people")
        assert db.pool.misses > misses

    def test_deform_width_prefix(self, people_vfs):
        # Deserialization is charged up to the largest needed attribute
        # (heap tuples deform left-to-right, like selective tokenizing).
        db_low = LoadedDBMS(vfs=people_vfs)
        db_low.load_csv("people", "people.csv", people_schema())
        fresh = VirtualFS()
        fresh.create("people.csv", PEOPLE_CSV)
        db_high = LoadedDBMS(vfs=fresh)
        db_high.load_csv("people", "people.csv", people_schema())

        base_low = db_low.model.count(CostEvent.DESERIALIZE)
        db_low.query("SELECT id FROM people")          # attr 0
        low = db_low.model.count(CostEvent.DESERIALIZE) - base_low
        base_high = db_high.model.count(CostEvent.DESERIALIZE)
        db_high.query("SELECT birth FROM people")      # attr 4
        high = db_high.model.count(CostEvent.DESERIALIZE) - base_high
        assert low < high

    def test_dbms_x_profile_prices_differ(self, people_vfs):
        postgres = LoadedDBMS(vfs=people_vfs)
        postgres.load_csv("people", "people.csv", people_schema())
        fresh = VirtualFS()
        fresh.create("people.csv", PEOPLE_CSV)
        dbms_x = LoadedDBMS(profile=DBMS_X_PROFILE, vfs=fresh)
        dbms_x.load_csv("people", "people.csv", people_schema())
        q = "SELECT sum(age) FROM people"
        pg_time = postgres.query(q).elapsed
        dx_time = dbms_x.query(q).elapsed
        assert dx_time < pg_time  # faster commercial executor (§5.1.4)


class TestExternalFilesDBMS:
    def test_instant_registration(self, people_vfs):
        db = ExternalFilesDBMS(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        assert db.elapsed() == 0.0

    def test_correct_results(self, people_vfs):
        db = ExternalFilesDBMS(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        result = db.query("SELECT name FROM people WHERE age = 25 "
                          "ORDER BY name")
        assert result.column("name") == ["bob", "erin"]

    def test_every_query_reparses_everything(self, people_vfs):
        db = ExternalFilesDBMS(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        db.query("SELECT id FROM people")
        first = db.model.count(CostEvent.CONVERT_INT)
        db.query("SELECT id FROM people")
        # No learning: the same full conversion cost again (§3.1).
        assert db.model.count(CostEvent.CONVERT_INT) == 2 * first
        # And the straw-man converts ALL attributes, not just id.
        assert first == 10  # 2 int attrs x 5 rows

    def test_no_statistics_for_optimizer(self, people_vfs):
        db = ExternalFilesDBMS(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        db.query("SELECT id FROM people")
        assert db.catalog.get("people").stats is None
        assert db.use_statistics is False

    def test_ragged_lines_skipped(self, vfs):
        vfs.create("ragged.csv", b"1,2\n3\n4,5\n")
        db = ExternalFilesDBMS(vfs=vfs)
        db.register_csv("r", "ragged.csv", micro_schema(2))
        assert db.query("SELECT count(*) FROM r").scalar() == 2

    def test_csv_engine_profile_default(self, people_vfs):
        db = ExternalFilesDBMS(vfs=people_vfs)
        assert db.model.profile is CSV_ENGINE_PROFILE

    def test_updates_visible_without_invalidation(self, people_vfs):
        db = ExternalFilesDBMS(vfs=people_vfs)
        db.register_csv("people", "people.csv", people_schema())
        assert db.query("SELECT count(*) FROM people").scalar() == 5
        people_vfs.append_bytes("people.csv",
                                b"6,frank,41,175.0,1983-02-11\n")
        assert db.query("SELECT count(*) FROM people").scalar() == 6
