"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    INTEGER,
    FLOAT,
    DATE,
    LoadedDBMS,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)
from repro.simcost.model import CostModel
from repro.workloads.micro import generate_micro_csv, micro_schema
from repro.workloads.tpch import generate_tpch, tpch_schema

PEOPLE_CSV = (
    b"1,alice,30,170.5,2001-05-20\n"
    b"2,bob,25,182.0,1998-11-02\n"
    b"3,carol,35,165.2,1990-01-15\n"
    b"4,dave,28,190.1,1996-07-30\n"
    b"5,erin,25,158.7,1999-03-08\n"
)


def people_schema() -> Schema:
    return Schema([
        ("id", INTEGER),
        ("name", varchar()),
        ("age", INTEGER),
        ("height", FLOAT),
        ("birth", DATE),
    ])


@pytest.fixture
def vfs() -> VirtualFS:
    return VirtualFS()


@pytest.fixture
def model() -> CostModel:
    return CostModel()


@pytest.fixture
def people_vfs() -> VirtualFS:
    fs = VirtualFS()
    fs.create("people.csv", PEOPLE_CSV)
    return fs


@pytest.fixture
def people_raw(people_vfs) -> PostgresRaw:
    db = PostgresRaw(vfs=people_vfs)
    db.register_csv("people", "people.csv", people_schema())
    return db


@pytest.fixture
def people_loaded(people_vfs) -> LoadedDBMS:
    db = LoadedDBMS(vfs=people_vfs)
    db.load_csv("people", "people.csv", people_schema())
    return db


@pytest.fixture
def micro_vfs() -> VirtualFS:
    """A small §5.1-style micro file: 600 rows x 20 int attributes."""
    fs = VirtualFS()
    generate_micro_csv(fs, "micro.csv", rows=600, nattrs=20, seed=7)
    return fs


@pytest.fixture
def micro_raw(micro_vfs) -> PostgresRaw:
    db = PostgresRaw(
        config=PostgresRawConfig(row_block_size=128), vfs=micro_vfs)
    db.register_csv("micro", "micro.csv", micro_schema(20))
    return db


@pytest.fixture(scope="session")
def tpch_tiny():
    """Session-scoped tiny TPC-H dataset (generation is the slow part)."""
    fs = VirtualFS()
    data = generate_tpch(fs, scale_factor=0.0004, seed=3)
    return fs, data


def fresh_raw_tpch(tpch_tiny, config: PostgresRawConfig | None = None,
                   ) -> PostgresRaw:
    fs, data = tpch_tiny
    db = PostgresRaw(config=config, vfs=fs)
    for table, path in data.paths.items():
        db.register_csv(table, path, tpch_schema(table))
    return db


def fresh_loaded_tpch(tpch_tiny) -> LoadedDBMS:
    fs, data = tpch_tiny
    db = LoadedDBMS(vfs=fs)
    for table, path in data.paths.items():
        db.load_csv(table, path, tpch_schema(table))
    return db
