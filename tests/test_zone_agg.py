"""Zone-map aggregate folds: MIN/MAX/COUNT(*) answered without I/O.

Once every partition of a glob table has been scanned, its zone map
holds exact per-file row counts and column extremes; an unfiltered,
ungrouped ``SELECT min(..), max(..), count(*)`` can then fold at plan
time — ``files_scanned == 0``. The fold is opt-in
(``enable_zone_aggregates``) because it changes priced counters, which
would break cost-parity oracles that expect warm scans to still scan.
"""

from __future__ import annotations

import pytest

from repro import PostgresRaw, PostgresRawConfig, VirtualFS


ROWS = [
    (1, "a", 10), (2, "b", None), (3, "a", 7), (4, "c", 2),
    (5, "b", 30), (6, "a", 4), (7, "c", 15), (8, "b", 9),
    (9, "a", 1), (10, "c", 22), (11, "b", 6), (12, "a", 11),
]

FOLDABLE = "SELECT count(*), min(id), max(id), min(v), max(v) FROM ev"


def to_csv(rows) -> bytes:
    return "".join(
        f"{i},{t},{'' if v is None else v}\n" for i, t, v in rows
    ).encode()


def build(enable=True, files=3, workers=1):
    per = len(ROWS) // files
    vfs = VirtualFS()
    for f in range(files):
        vfs.create(f"ev-{f}.csv", to_csv(ROWS[f * per:(f + 1) * per]))
    db = PostgresRaw(vfs=vfs, config=PostgresRawConfig(
        scan_workers=workers, row_block_size=4,
        enable_zone_aggregates=enable))
    db.query("CREATE TABLE ev (id INTEGER, tag VARCHAR, v INTEGER) "
             "USING csv OPTIONS (path 'ev-*.csv')")
    return db


def folded(result) -> bool:
    return "ZoneAggregate" in str(result.plan)


class TestZoneAggregates:
    def test_flag_defaults_off(self):
        assert PostgresRawConfig().enable_zone_aggregates is False
        db = build(enable=False)
        cold = db.query(FOLDABLE)
        warm = db.query(FOLDABLE)
        assert not folded(warm)
        assert warm.counters.get("files_scanned") == 3
        assert warm.rows == cold.rows

    def test_warm_fold_scans_zero_files(self):
        db = build()
        cold = db.query(FOLDABLE)
        assert not folded(cold)  # zones unknown: must scan
        assert cold.counters.get("files_scanned") == 3
        warm = db.query(FOLDABLE)
        assert folded(warm)
        assert warm.counters.get("files_scanned", 0) == 0
        assert warm.rows == cold.rows == [(12, 1, 12, 1, 30)]

    def test_fold_charges_no_scan_work(self):
        db = build()
        db.query(FOLDABLE)
        warm = db.query(FOLDABLE)
        assert folded(warm)
        for counter in ("tokenize_bytes", "parse_fields", "io_bytes"):
            assert warm.counters.get(counter) is None

    @pytest.mark.parametrize("workers", [1, 4])
    def test_differential_vs_disabled_twin(self, workers):
        on = build(enable=True, workers=workers)
        off = build(enable=False, workers=workers)
        queries = [
            FOLDABLE,
            "SELECT min(v) FROM ev",
            "SELECT count(*) FROM ev",
            "SELECT max(id), count(*) FROM ev",
        ]
        for sql in queries:
            on.query(sql)
            off.query(sql)
        for sql in queries:
            got, expected = on.query(sql), off.query(sql)
            assert folded(got), sql
            assert got.rows == expected.rows, sql

    def test_filtered_grouped_or_ordered_queries_still_scan(self):
        db = build()
        db.query(FOLDABLE)
        for sql in (
                "SELECT min(tag) FROM ev",  # tag zones not harvested yet
                "SELECT count(*) FROM ev WHERE v > 5",
                "SELECT tag, count(*) FROM ev GROUP BY tag",
                "SELECT count(*), sum(v) FROM ev",  # sum is not foldable
        ):
            assert not folded(db.query(sql)), sql

    def test_varchar_extremes_fold_once_harvested(self):
        db = build()
        db.query(FOLDABLE)
        db.query("SELECT min(tag), max(tag) FROM ev")  # harvests tag zones
        result = db.query("SELECT min(tag), max(tag) FROM ev")
        assert folded(result)
        assert result.rows == [("a", "c")]

    def test_limit_applies_to_folded_row(self):
        db = build()
        db.query(FOLDABLE)
        result = db.query("SELECT count(*) FROM ev LIMIT 0")
        assert folded(result)
        assert result.rows == []

    def test_new_partition_file_blocks_fold_until_scanned(self):
        db = build()
        db.query(FOLDABLE)
        assert folded(db.query(FOLDABLE))
        db.vfs.create("ev-9.csv", to_csv([(99, "z", 50)]))
        fresh = db.query(FOLDABLE)
        assert not folded(fresh)  # the new file has no zone yet
        assert fresh.rows == [(13, 1, 99, 1, 50)]
        again = db.query(FOLDABLE)
        assert folded(again)
        assert again.rows == fresh.rows

    def test_appended_rows_invalidate_that_files_zone(self):
        db = build()
        db.query(FOLDABLE)
        db.vfs.append_bytes("ev-1.csv", to_csv([(77, "q", 40)]))
        fresh = db.query(FOLDABLE)
        assert not folded(fresh)
        assert fresh.rows == [(13, 1, 77, 1, 40)]
        assert folded(db.query(FOLDABLE))

    def test_all_null_column_folds_to_null(self):
        vfs = VirtualFS()
        vfs.create("ev-0.csv", to_csv([(1, "a", None), (2, "b", None)]))
        vfs.create("ev-1.csv", to_csv([(3, "c", None)]))
        db = PostgresRaw(vfs=vfs, config=PostgresRawConfig(
            enable_zone_aggregates=True, row_block_size=4))
        db.query("CREATE TABLE ev (id INTEGER, tag VARCHAR, v INTEGER) "
                 "USING csv OPTIONS (path 'ev-*.csv')")
        sql = "SELECT min(v), max(v), count(*) FROM ev"
        cold = db.query(sql)
        warm = db.query(sql)
        assert warm.rows == cold.rows == [(None, None, 3)]
