"""Differential fuzzing of the rollup router.

Twin engines over identical bytes are kept in *lockstep*: every scan
one engine performs is mirrored on the other, so their adaptive state
(positional map, cache, statistics — and therefore their raw plans)
never diverges. Only one twin holds rollups; every generated query must
then come back bit-identical (values and order) from both, whether the
router hit, missed with an annotation, or stayed out of the way.

Phases: random dims/aggs/predicates/HAVING/ORDER/LIMIT; staleness after
an append (fallback, then idle rebuild); rename and drop lifecycle.
Runs at scan_workers=1 and 4.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    FLOAT,
    INTEGER,
    PostgresRaw,
    PostgresRawConfig,
    Schema,
    VirtualFS,
    varchar,
)
from repro.core.tuner import IdleTuner

REGIONS = ["east", "west", "north", "south"]
PRODUCTS = ["apple", "pear", "fig", "plum", "kiwi", "date"]

ROLLUPS = [
    ("r_all", "data", "region, product, dayno",
     "count(*), sum(qty), avg(price), min(qty), max(price), count(qty), "
     "min(price)"),
    ("r_region", "data", "region", "count(*), sum(qty), avg(qty)"),
]

# the build query each CREATE ROLLUP runs, mirrored on the baseline so
# the twins' scan-driven state stays identical
BUILD_MIRRORS = [
    "SELECT region, product, dayno, count(*), sum(qty), sum(price), "
    "count(price), min(qty), max(price), count(qty), min(price) "
    "FROM data GROUP BY region, product, dayno",
    "SELECT region, count(*), sum(qty), count(qty) "
    "FROM data GROUP BY region",
]

AGG_POOL = [
    "count(*)", "sum(qty)", "count(qty)", "min(qty)", "max(price)",
    "avg(price)", "avg(qty)", "min(price)",
]

WHERE_POOL = [
    "region = 'east'", "dayno > 2", "product <> 'apple'",
    "region = 'west' AND dayno < 4", "qty > 50", "price < 5.0",
    "region = 'nowhere'",
]


def data_schema() -> Schema:
    return Schema([
        ("region", varchar()),
        ("product", varchar()),
        ("dayno", INTEGER),
        ("qty", INTEGER),
        ("price", FLOAT),
    ])


def generate_csv(rows: int, seed: int) -> bytes:
    rng = random.Random(seed)
    out = []
    for _ in range(rows):
        qty = "" if rng.random() < 0.1 else str(rng.randint(0, 100))
        out.append(f"{rng.choice(REGIONS)},{rng.choice(PRODUCTS)},"
                   f"{rng.randint(1, 5)},{qty},"
                   f"{rng.randint(1, 999) / 100.0}\n")
    return "".join(out).encode()


def make_engine(data: bytes, workers: int) -> PostgresRaw:
    fs = VirtualFS()
    fs.create("data.csv", data)
    db = PostgresRaw(vfs=fs, config=PostgresRawConfig(
        scan_workers=workers, row_block_size=32))
    db.register_csv("data", "data.csv", data_schema())
    return db


def random_query(rng: random.Random, table: str = "data") -> str:
    dims = rng.sample(["region", "product", "dayno"],
                      k=rng.choice([0, 1, 1, 2, 2, 3]))
    aggs = rng.sample(AGG_POOL, k=rng.randint(1, 3))
    items = dims + [f"{agg} AS a{i}" for i, agg in enumerate(aggs)]
    sql = f"SELECT {', '.join(items)} FROM {table}"
    if rng.random() < 0.35:
        sql += f" WHERE {rng.choice(WHERE_POOL)}"
    if dims:
        sql += f" GROUP BY {', '.join(dims)}"
        if rng.random() < 0.2:
            sql += " HAVING count(*) > 1"
    if rng.random() < 0.3:
        sql += " ORDER BY a0 DESC LIMIT 5"
    return sql


class Twins:
    """Lockstep pair: run everything on both, compare bit-for-bit."""

    def __init__(self, workers: int, seed: int = 11, rows: int = 240):
        data = generate_csv(rows, seed)
        self.baseline = make_engine(data, workers)
        self.routed = make_engine(data, workers)
        warm = "SELECT region, product, dayno, qty, price FROM data"
        self.baseline.query(warm)
        self.routed.query(warm)

    def create_rollups(self):
        for (name, table, dims, aggs), mirror in zip(ROLLUPS,
                                                     BUILD_MIRRORS):
            self.routed.query(
                f"CREATE ROLLUP {name} ON {table} ({dims}) AGG ({aggs})")
            self.baseline.query(mirror)

    def check(self, sql: str) -> dict:
        expected = self.baseline.query(sql)
        got = self.routed.query(sql)
        assert got.columns == expected.columns, sql
        assert got.rows == expected.rows, sql
        return got.plan

    def append(self, extra: bytes):
        self.baseline.vfs.append_bytes("data.csv", extra)
        self.routed.vfs.append_bytes("data.csv", extra)


@pytest.fixture(params=[1, 4], ids=["workers1", "workers4"])
def twins(request) -> Twins:
    pair = Twins(workers=request.param)
    pair.create_rollups()
    return pair


class TestRollupFuzz:
    def test_differential_random_queries(self, twins):
        rng = random.Random(4207)
        plans = [twins.check(random_query(rng)) for _ in range(40)]
        hits = twins.routed.counters().get("rollup_hits", 0)
        misses = twins.routed.counters().get("rollup_misses", 0)
        # the workload must actually exercise both router outcomes
        assert hits >= 5, (hits, misses)
        assert misses >= 5, (hits, misses)
        assert any(p.get("rollup") in ("r_all", "r_region")
                   for p in plans)

    def test_staleness_append_then_rebuild(self, twins):
        rng = random.Random(99)
        twins.check("SELECT region, count(*) FROM data GROUP BY region")
        twins.append(generate_csv(24, seed=77))
        plans = [twins.check(random_query(rng)) for _ in range(12)]
        assert any("stale" in str(p.get("rollup")) for p in plans)
        assert not any(p.get("rollup") in ("r_all", "r_region")
                       for p in plans)
        # idle rebuild on the routed twin; mirror its build scans
        report = IdleTuner(twins.routed).exploit_idle_time_for_rollups(1e9)
        assert sorted(report.rebuilt) == ["r_all", "r_region"]
        for mirror in BUILD_MIRRORS:
            twins.baseline.query(mirror)
        plans = [twins.check(random_query(rng)) for _ in range(12)]
        assert any(p.get("rollup") in ("r_all", "r_region")
                   for p in plans)

    def test_rename_lifecycle(self, twins):
        twins.baseline.query("ALTER TABLE data RENAME TO events")
        twins.routed.query("ALTER TABLE data RENAME TO events")
        rng = random.Random(5)
        plans = [twins.check(random_query(rng, table="events"))
                 for _ in range(12)]
        assert any(p.get("rollup") in ("r_all", "r_region")
                   for p in plans)

    def test_drop_lifecycle(self, twins):
        rng = random.Random(8)
        twins.routed.query("DROP ROLLUP r_region")
        for _ in range(8):
            twins.check(random_query(rng))
        twins.routed.query("DROP ROLLUP r_all")
        plans = [twins.check(random_query(rng)) for _ in range(8)]
        assert all("rollup" not in p for p in plans)

    def test_drop_table_then_recreate_never_routes(self, twins):
        twins.routed.query("DROP TABLE data")
        twins.baseline.query("DROP TABLE data")
        data = generate_csv(60, seed=13)
        twins.baseline.vfs.write_bytes("data.csv", data)
        twins.routed.vfs.write_bytes("data.csv", data)
        twins.baseline.register_csv("data", "data.csv", data_schema())
        twins.routed.register_csv("data", "data.csv", data_schema())
        rng = random.Random(21)
        plans = [twins.check(random_query(rng)) for _ in range(8)]
        assert all("rollup" not in p for p in plans)
