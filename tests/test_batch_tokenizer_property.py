"""Property tests pinning the vectorized tokenizer to the scalar one.

For arbitrary CSV byte buffers (random field contents, empty fields,
ragged widths), the ``block_*`` functions must return exactly the spans
and chars-scanned counts of ``field_spans_prefix`` / ``span_forward`` /
``span_backward`` — including the incremental cases where tokenization
starts from a previously indexed attribute rather than the line start.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import CSVFormatError
from repro.formats.csvfmt import (
    BlockTokenizer,
    block_field_spans,
    block_span_backward,
    block_span_forward,
    field_spans_prefix,
    newline_offsets,
    span_backward,
    span_forward,
)

# Field bytes avoid the delimiter and newline; empty fields included.
field_strategy = st.binary(min_size=0, max_size=6).map(
    lambda b: b.replace(b",", b"x").replace(b"\n", b"y"))

lines_strategy = st.integers(2, 9).flatmap(
    lambda nattrs: st.tuples(
        st.just(nattrs),
        st.lists(st.lists(field_strategy, min_size=nattrs,
                          max_size=nattrs),
                 min_size=1, max_size=20)))


def build_block(rows):
    lines = [b",".join(fields) for fields in rows]
    buf = b"\n".join(lines)
    starts, pos = [], 0
    for line in lines:
        starts.append(pos)
        pos += len(line) + 1
    starts = np.array(starts, dtype=np.int64)
    ends = starts + np.array([len(line) for line in lines],
                             dtype=np.int64)
    return buf, lines, starts, ends


class TestNewlineOffsets:
    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_scan(self, blob):
        expected = [i for i, b in enumerate(blob) if b == 0x0A]
        assert newline_offsets(blob).tolist() == expected


class TestPrefixSpans:
    @given(lines_strategy, st.data())
    @settings(max_examples=120, deadline=None)
    def test_equals_field_spans_prefix(self, case, data):
        nattrs, rows = case
        buf, lines, starts, ends = build_block(rows)
        upto = data.draw(st.integers(0, nattrs - 1))
        tok = BlockTokenizer(buf)
        vec_starts, vec_ends, vec_scanned = block_field_spans(
            tok, starts, ends, upto)
        for i, line in enumerate(lines):
            spans, scanned = field_spans_prefix(line, upto)
            got = [(int(vec_starts[i, j] - starts[i]),
                    int(vec_ends[i, j] - starts[i]))
                   for j in range(upto + 1)]
            assert got == spans[:upto + 1]
            assert int(vec_scanned[i]) == scanned

    def test_ragged_line_raises_like_scalar(self):
        buf, lines, starts, ends = build_block(
            [[b"a", b"b", b"c"], [b"onlyonefield"]])
        # Scalar raises per line; the block function raises for the
        # block — same exception type either way.
        with pytest.raises(CSVFormatError):
            field_spans_prefix(b"onlyonefield", 2)
        with pytest.raises(CSVFormatError):
            block_field_spans(BlockTokenizer(buf), starts, ends, 2)


class TestIncrementalSpans:
    @given(lines_strategy, st.data())
    @settings(max_examples=120, deadline=None)
    def test_forward_from_indexed_attribute(self, case, data):
        """From a known (previously indexed) attribute start, stepping
        forward must match span_forward row by row."""
        nattrs, rows = case
        buf, lines, starts, ends = build_block(rows)
        base_attr = data.draw(st.integers(0, nattrs - 1))
        steps = data.draw(st.integers(0, nattrs - 1 - base_attr))
        tok = BlockTokenizer(buf)
        prefix_starts, _, _ = block_field_spans(tok, starts, ends,
                                                base_attr)
        base_pos = prefix_starts[:, base_attr]
        vec_starts, vec_ends, vec_scanned = block_span_forward(
            tok, base_pos, steps, ends)
        for i, line in enumerate(lines):
            spans, scanned = span_forward(
                line, int(base_pos[i] - starts[i]), steps)
            got = [(int(vec_starts[i, j] - starts[i]),
                    int(vec_ends[i, j] - starts[i]))
                   for j in range(steps + 1)]
            assert got == spans
            assert int(vec_scanned[i]) == scanned

    @given(lines_strategy, st.data())
    @settings(max_examples=120, deadline=None)
    def test_backward_from_indexed_attribute(self, case, data):
        """Backward tokenization from a known attribute (§4.2 "jumps
        ... and tokenizes backwards") must match span_backward."""
        nattrs, rows = case
        buf, lines, starts, ends = build_block(rows)
        base_attr = data.draw(st.integers(1, nattrs - 1))
        steps = data.draw(st.integers(1, base_attr))
        tok = BlockTokenizer(buf)
        prefix_starts, _, _ = block_field_spans(tok, starts, ends,
                                                base_attr)
        base_pos = prefix_starts[:, base_attr]
        vec_starts, vec_ends, vec_scanned = block_span_backward(
            tok, base_pos, steps, starts)
        for i, line in enumerate(lines):
            spans, scanned = span_backward(
                line, int(base_pos[i] - starts[i]), steps)
            got = [(int(vec_starts[i, j] - starts[i]),
                    int(vec_ends[i, j] - starts[i]))
                   for j in range(steps)]
            assert got == spans
            assert int(vec_scanned[i]) == scanned

    def test_forward_running_out_raises_like_scalar(self):
        buf, lines, starts, ends = build_block([[b"a", b"b"]])
        tok = BlockTokenizer(buf)
        with pytest.raises(CSVFormatError):
            span_forward(lines[0], 0, 5)
        with pytest.raises(CSVFormatError):
            block_span_forward(tok, starts, 5, ends)

    def test_backward_running_out_raises_like_scalar(self):
        buf, lines, starts, ends = build_block([[b"a", b"b", b"c"]])
        tok = BlockTokenizer(buf)
        prefix_starts, _, _ = block_field_spans(tok, starts, ends, 2)
        base_pos = prefix_starts[:, 2]
        with pytest.raises(CSVFormatError):
            span_backward(lines[0], int(base_pos[0]), 5)
        with pytest.raises(CSVFormatError):
            block_span_backward(tok, base_pos, 5, starts)
