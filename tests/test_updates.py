"""Tests for external updates (§4.5): appends, rewrites, new files."""

import pytest

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.simcost.clock import CostEvent
from repro.workloads.micro import (
    append_micro_rows,
    generate_micro_csv,
    micro_schema,
)

ATTRS = 6


@pytest.fixture
def db():
    vfs = VirtualFS()
    generate_micro_csv(vfs, "t.csv", rows=50, nattrs=ATTRS, seed=1)
    engine = PostgresRaw(config=PostgresRawConfig(row_block_size=16),
                         vfs=vfs)
    engine.register_csv("t", "t.csv", micro_schema(ATTRS))
    return engine


class TestAppends:
    def test_appended_rows_immediately_visible(self, db):
        assert db.query("SELECT count(*) FROM t").scalar() == 50
        append_micro_rows(db.vfs, "t.csv", rows=20, nattrs=ATTRS, seed=2)
        assert db.query("SELECT count(*) FROM t").scalar() == 70

    def test_append_before_any_query(self, db):
        append_micro_rows(db.vfs, "t.csv", rows=5, nattrs=ATTRS, seed=2)
        assert db.query("SELECT count(*) FROM t").scalar() == 55

    def test_append_preserves_old_values(self, db):
        before = db.query("SELECT a1 FROM t").rows
        append_micro_rows(db.vfs, "t.csv", rows=10, nattrs=ATTRS, seed=2)
        after = db.query("SELECT a1 FROM t").rows
        assert after[:50] == before

    def test_append_extends_structures_not_rebuilds(self, db):
        db.query("SELECT a1, a2 FROM t")
        pm = db.positional_map_of("t")
        pointers_before = pm.pointer_count
        append_micro_rows(db.vfs, "t.csv", rows=20, nattrs=ATTRS, seed=2)
        db.query("SELECT a1, a2 FROM t")
        # Old pointers survived; new ones were added for the tail.
        assert pm.pointer_count > pointers_before
        assert pm.known_line_count == 70

    def test_append_scan_streams_only_the_tail(self, db):
        db.query("SELECT a1 FROM t")
        streamed_before = db.model.count(CostEvent.NEWLINE_SCAN)
        old_size = db.vfs.size("t.csv")
        append_micro_rows(db.vfs, "t.csv", rows=10, nattrs=ATTRS, seed=2)
        new_size = db.vfs.size("t.csv")
        db.query("SELECT a1 FROM t")
        streamed = db.model.count(CostEvent.NEWLINE_SCAN) - streamed_before
        # Streaming re-reads from the last known line start, which is
        # far less than the whole file.
        assert streamed <= (new_size - old_size) + 200

    def test_multiple_appends(self, db):
        for i in range(3):
            append_micro_rows(db.vfs, "t.csv", rows=10, nattrs=ATTRS,
                              seed=10 + i)
            expected = 50 + 10 * (i + 1)
            assert db.query("SELECT count(*) FROM t").scalar() == expected

    @pytest.mark.parametrize("batch", [True, False])
    def test_wide_rescan_after_append_grows_last_block(self, batch):
        """Regression: an append that grows the last positional-map
        block must not break merging newly discovered positions into
        the shorter pre-append columns (scalar path flush)."""
        vfs = VirtualFS()
        generate_micro_csv(vfs, "t.csv", rows=50, nattrs=ATTRS, seed=1)
        engine = PostgresRaw(config=PostgresRawConfig(
            row_block_size=16, batch_mode=batch), vfs=vfs)
        engine.register_csv("t", "t.csv", micro_schema(ATTRS))
        wide = "SELECT a1, a2, a3, a4 FROM t"
        before = engine.query(wide).rows
        append_micro_rows(engine.vfs, "t.csv", rows=3, nattrs=ATTRS,
                          seed=9)
        engine.query("SELECT a1 FROM t")  # narrow scan re-indexes a1
        after = engine.query(wide).rows
        assert after[:50] == before
        assert len(after) == 53


class TestRewrites:
    def test_rewrite_invalidates_structures(self, db):
        db.query("SELECT a1 FROM t")
        assert db.positional_map_of("t").pointer_count > 0
        generate_micro_csv(db.vfs, "t.csv", rows=30, nattrs=ATTRS, seed=9)
        assert db.query("SELECT count(*) FROM t").scalar() == 30
        # Structures were rebuilt for the new content.
        assert db.positional_map_of("t").known_line_count == 30

    def test_rewrite_with_different_values(self, db):
        db.query("SELECT a1 FROM t")
        db.vfs.write_bytes("t.csv", b"1,2,3,4,5,6\n")
        result = db.query("SELECT a1, a6 FROM t")
        assert result.rows == [(1, 6)]

    def test_shrinking_rewrite(self, db):
        db.query("SELECT a1 FROM t")
        db.vfs.write_bytes("t.csv", b"7,8,9,10,11,12\n")
        assert db.query("SELECT count(*) FROM t").scalar() == 1


class TestNewFiles:
    def test_new_file_instantly_queryable(self, db):
        generate_micro_csv(db.vfs, "fresh.csv", rows=10, nattrs=ATTRS,
                           seed=5)
        db.add_file("fresh", "fresh.csv", micro_schema(ATTRS))
        assert db.query("SELECT count(*) FROM fresh").scalar() == 10

    def test_two_new_tables_join(self, db):
        from repro import INTEGER, Schema, varchar
        db.vfs.create("lookup.csv", b"1,one\n2,two\n3,three\n")
        db.vfs.create("facts.csv", b"10,1\n20,1\n30,3\n")
        db.add_file("lookup", "lookup.csv",
                    Schema([("k", INTEGER), ("label", varchar())]))
        db.add_file("facts", "facts.csv",
                    Schema([("v", INTEGER), ("fk", INTEGER)]))
        joined = db.query(
            "SELECT label, sum(v) AS total FROM lookup, facts "
            "WHERE fk = k GROUP BY label ORDER BY total DESC")
        assert joined.rows == [("one", 30), ("three", 30)] or \
            joined.rows == [("three", 30), ("one", 30)]
        semi = db.query(
            "SELECT label FROM lookup WHERE EXISTS "
            "(SELECT * FROM facts WHERE fk = k) ORDER BY label")
        assert semi.column("label") == ["one", "three"]
