"""Tests for the §7 opportunity features: idle-time auto-tuning and the
file-system-interface prewarmer."""

import pytest

from repro import (
    CostModel,
    IdleTuner,
    LoadedDBMS,
    PostgresRaw,
    PostgresRawConfig,
    VirtualFS,
)
from repro.errors import CatalogError, ReproError
from repro.simcost.clock import CostEvent
from repro.workloads.micro import generate_micro_csv, micro_schema

ATTRS = 10


def make_engine(rows=200, block=64):
    vfs = VirtualFS()
    generate_micro_csv(vfs, "t.csv", rows, ATTRS, seed=6)
    db = PostgresRaw(config=PostgresRawConfig(row_block_size=block),
                     vfs=vfs)
    db.register_csv("t", "t.csv", micro_schema(ATTRS))
    return db


class TestIdleTuner:
    def test_requires_postgresraw(self, people_loaded):
        with pytest.raises(ReproError):
            IdleTuner(people_loaded)

    def test_hint_validates_columns(self):
        db = make_engine()
        tuner = IdleTuner(db)
        with pytest.raises(Exception):
            tuner.hint("t", ["nonexistent"])

    def test_hints_drive_candidates(self):
        db = make_engine()
        tuner = IdleTuner(db)
        tuner.hint("t", ["a3"], weight=5)
        tuner.hint("t", ["a7"], weight=1)
        assert tuner.candidates()[0] == ("t", "a3")

    def test_observed_workload_drives_candidates(self):
        db = make_engine()
        db.query("SELECT a2 FROM t")
        db.query("SELECT a2 FROM t")
        db.query("SELECT a5 FROM t")
        tuner = IdleTuner(db)
        assert tuner.candidates()[0] == ("t", "a2")

    def test_idle_time_warms_hinted_attribute(self):
        db = make_engine()
        tuner = IdleTuner(db)
        tuner.hint("t", ["a4"])
        report = tuner.exploit_idle_time(10.0)
        assert ("t", "a4") in report.warmed
        assert report.seconds_used > 0
        # The tuned attribute is now answerable without file access.
        io_before = (db.model.count(CostEvent.DISK_READ_COLD)
                     + db.model.count(CostEvent.DISK_READ_WARM))
        db.query("SELECT a4 FROM t")
        io_after = (db.model.count(CostEvent.DISK_READ_COLD)
                    + db.model.count(CostEvent.DISK_READ_WARM))
        assert io_after == io_before

    def test_budget_respected(self):
        db = make_engine(rows=400)
        tuner = IdleTuner(db)
        tuner.hint("t", [f"a{i}" for i in range(1, ATTRS + 1)])
        # A budget that fits roughly one attribute's warm-up.
        probe = IdleTuner(make_engine(rows=400))
        probe.hint("t", ["a1"])
        one_attr = probe.exploit_idle_time(10.0).seconds_used
        report = tuner.exploit_idle_time(one_attr * 1.5)
        assert report.exhausted_budget
        assert 1 <= len(report.warmed) < ATTRS

    def test_already_warm_attributes_skipped(self):
        db = make_engine()
        db.query("SELECT a1 FROM t")  # fully caches a1
        tuner = IdleTuner(db)
        report = tuner.exploit_idle_time(10.0)
        assert ("t", "a1") not in report.warmed

    def test_zero_budget_rejected(self):
        tuner = IdleTuner(make_engine())
        with pytest.raises(ReproError):
            tuner.exploit_idle_time(0)

    def test_idle_work_pays_off_at_query_time(self):
        cold = make_engine(rows=400)
        tuned = make_engine(rows=400)
        tuner = IdleTuner(tuned)
        tuner.hint("t", ["a6"])
        tuner.exploit_idle_time(10.0)
        q = "SELECT sum(a6) FROM t"
        assert tuned.query(q).elapsed < cold.query(q).elapsed


class TestFsInterfacePrewarmer:
    def test_requires_positional_map(self):
        vfs = VirtualFS()
        generate_micro_csv(vfs, "t.csv", 50, ATTRS, seed=6)
        db = PostgresRaw(config=PostgresRawConfig(
            enable_positional_map=False, enable_cache=False), vfs=vfs)
        db.register_csv("t", "t.csv", micro_schema(ATTRS))
        with pytest.raises(CatalogError):
            db.enable_fs_interface("t")

    def test_foreign_read_builds_line_index(self):
        db = make_engine(rows=300)
        db.enable_fs_interface("t")
        assert db.positional_map_of("t").known_line_count == 0
        # Another program (a "text editor") reads the file.
        foreign = CostModel()
        handle = db.vfs.open("t.csv", foreign)
        handle.read_at(0, db.vfs.size("t.csv"))
        pm = db.positional_map_of("t")
        assert pm.known_line_count == 300

    def test_engines_own_scans_do_not_recurse(self):
        db = make_engine(rows=100)
        prewarmer = db.enable_fs_interface("t")
        db.query("SELECT a1 FROM t")
        assert prewarmer.bytes_prewarmed == 0

    def test_query_after_prewarm_skips_newline_scan(self):
        db = make_engine(rows=300)
        db.enable_fs_interface("t")
        foreign = CostModel()
        db.vfs.open("t.csv", foreign).read_at(0, db.vfs.size("t.csv"))
        scanned_before = db.model.count(CostEvent.NEWLINE_SCAN)
        result = db.query("SELECT a1 FROM t")
        # The query itself did no newline discovery: the background
        # prewarm already built the line index.
        assert result.counters.get("newline_scan", 0) == 0
        assert len(result) == 300

    def test_partial_foreign_read_extends_frontier_only(self):
        db = make_engine(rows=300)
        db.enable_fs_interface("t")
        size = db.vfs.size("t.csv")
        foreign = CostModel()
        handle = db.vfs.open("t.csv", foreign)
        handle.read_at(0, size // 2)
        pm = db.positional_map_of("t")
        partial = pm.known_line_count
        assert 0 < partial < 300
        # A read beyond the frontier cannot help (non-contiguous).
        handle.read_at(size - 10, 10)
        assert pm.known_line_count == partial
        # Filling the gap completes the index.
        handle.read_at(size // 2, size)
        assert pm.known_line_count == 300

    def test_results_correct_after_prewarm(self):
        plain = make_engine(rows=120)
        warmed = make_engine(rows=120)
        warmed.enable_fs_interface("t")
        foreign = CostModel()
        warmed.vfs.open("t.csv", foreign).read_at(
            0, warmed.vfs.size("t.csv"))
        q = "SELECT a2, a9 FROM t WHERE a1 < 500000000"
        assert warmed.query(q).rows == plain.query(q).rows

    def test_enable_idempotent_disable_detaches(self):
        db = make_engine(rows=50)
        first = db.enable_fs_interface("t")
        second = db.enable_fs_interface("t")
        assert first is second
        db.disable_fs_interface("t")
        foreign = CostModel()
        db.vfs.open("t.csv", foreign).read_at(0, 100)
        assert first.bytes_prewarmed == 0

    def test_loaded_engine_reads_prewarm_the_raw_engine(self):
        # Even a competing DBMS's bulk load warms the NoDB engine.
        db = make_engine(rows=200)
        db.enable_fs_interface("t")
        loaded = LoadedDBMS(vfs=db.vfs)
        loaded.load_csv("t", "t.csv", micro_schema(ATTRS))
        assert db.positional_map_of("t").known_line_count == 200
