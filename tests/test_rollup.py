"""Materialized rollups: DDL, the query router, staleness, idle tuning.

The central claim under test is *bit-identity*: a query answered from a
rollup returns exactly the rows — values **and** order — the raw scan
would have produced. Builds pin the hash aggregation strategy (heap
order = first-seen group order of the raw file) and probes pin whatever
strategy the raw plan would pick at probe time, so the differential
checks here compare ``rows == rows`` with no sorting or set-ification.
"""

from __future__ import annotations

import pytest

import repro
from repro import (
    FLOAT,
    INTEGER,
    PostgresRaw,
    Schema,
    VirtualFS,
    varchar,
)
from repro.core.tuner import IdleTuner
from repro.errors import CatalogError, ParseError, ReproError

SALES_CSV = (
    b"east,apple,10,1.5\n"
    b"west,apple,5,2.0\n"
    b"east,pear,7,3.0\n"
    b"west,pear,2,2.5\n"
    b"east,apple,3,1.0\n"
    b"north,fig,1,9.9\n"
    b"east,fig,,4.0\n"
    b"west,apple,8,2.0\n"
)

MORE_SALES_CSV = (
    b"south,apple,4,1.25\n"
    b"east,pear,6,3.5\n"
)

CREATE_R1 = ("CREATE ROLLUP r1 ON sales (region, product) "
             "AGG (count(*), sum(qty), avg(price), min(qty), max(price), "
             "count(qty))")


def sales_schema() -> Schema:
    return Schema([
        ("region", varchar()),
        ("product", varchar()),
        ("qty", INTEGER),
        ("price", FLOAT),
    ])


def make_engine() -> PostgresRaw:
    fs = VirtualFS()
    fs.create("sales.csv", SALES_CSV)
    db = PostgresRaw(vfs=fs)
    db.register_csv("sales", "sales.csv", sales_schema())
    return db


@pytest.fixture
def sales() -> PostgresRaw:
    return make_engine()


@pytest.fixture
def twins() -> tuple[PostgresRaw, PostgresRaw]:
    """Two identically-warmed engines; only ``routed`` gets the rollup.

    The baseline mirrors the rollup's build scan as a plain query so
    both engines' adaptive state (positional map, cache, statistics)
    stays in lockstep — the raw plans they produce are then identical,
    which is what makes ``rows == rows`` a fair oracle.
    """
    baseline, routed = make_engine(), make_engine()
    warm = "SELECT region, product, qty, price FROM sales"
    baseline.query(warm)
    routed.query(warm)
    routed.query(CREATE_R1)
    baseline.query("SELECT region, product, count(*), sum(qty), "
                   "sum(price), count(price), min(qty), max(price), "
                   "count(qty) FROM sales GROUP BY region, product")
    return baseline, routed


DIFFERENTIAL_QUERIES = [
    # exact dimension match
    "SELECT region, product, count(*), sum(qty) FROM sales "
    "GROUP BY region, product",
    # dimension subset: re-aggregation over stored partials
    "SELECT region, sum(qty), count(*) FROM sales GROUP BY region",
    # predicate on a rollup dimension that is not grouped
    "SELECT region, count(*) FROM sales WHERE product = 'apple' "
    "GROUP BY region",
    # global aggregate (no GROUP BY at all)
    "SELECT count(*), sum(qty) FROM sales",
    # avg carried as sum+count
    "SELECT region, product, avg(price) FROM sales "
    "GROUP BY region, product",
    # min/max re-aggregation
    "SELECT product, min(qty), max(price) FROM sales GROUP BY product",
    # HAVING on a re-aggregated value
    "SELECT region, count(*) AS n FROM sales GROUP BY region "
    "HAVING count(*) > 1",
    # ORDER BY alias + LIMIT on top of the rewrite
    "SELECT product, sum(qty) AS total FROM sales GROUP BY product "
    "ORDER BY total DESC LIMIT 2",
    # empty filter: global count must come back 0, not NULL
    "SELECT count(*) FROM sales WHERE region = 'nowhere'",
    # count(column) skips NULLs
    "SELECT region, count(qty) FROM sales GROUP BY region",
]


class TestRollupDDL:
    def test_create_reports_row_count(self, sales):
        result = sales.query(CREATE_R1)
        assert result.rows == [("CREATE ROLLUP r1 ON sales (6 rows)",)]
        rollup = sales.rollups.get("r1")
        assert rollup.dims == ("region", "product")
        assert rollup.row_count == 6
        assert sales.vfs.exists(rollup.table.path)

    def test_avg_stored_as_sum_plus_count(self, sales):
        sales.query("CREATE ROLLUP r ON sales (region) AGG (avg(price))")
        rollup = sales.rollups.get("r")
        stored = set(rollup.storage.values())
        assert stored == {"sum_price", "count_price"}

    def test_duplicate_rollup_rejected(self, sales):
        sales.query(CREATE_R1)
        with pytest.raises(CatalogError, match="already registered"):
            sales.query("CREATE ROLLUP r1 ON sales (region) AGG (count(*))")

    def test_if_not_exists_skips(self, sales):
        sales.query(CREATE_R1)
        result = sales.query("CREATE ROLLUP IF NOT EXISTS r1 ON sales "
                             "(region) AGG (count(*))")
        assert "skipped" in result.rows[0][0]
        assert sales.rollups.get("r1").dims == ("region", "product")

    def test_unknown_dimension_rejected(self, sales):
        with pytest.raises(CatalogError, match="not a column"):
            sales.query("CREATE ROLLUP r ON sales (nope) AGG (count(*))")

    def test_sum_needs_numeric_column(self, sales):
        with pytest.raises(CatalogError, match="numeric"):
            sales.query(
                "CREATE ROLLUP r ON sales (region) AGG (sum(product))")

    def test_unknown_source_rejected(self, sales):
        with pytest.raises(CatalogError, match="unknown table"):
            sales.query("CREATE ROLLUP r ON nope (region) AGG (count(*))")

    def test_parse_errors_are_positioned(self, sales):
        for bad in (
                "CREATE ROLLUP r1 sales (region) AGG (count(*))",  # no ON
                "CREATE ROLLUP r1 ON sales AGG (count(*))",  # no dims
                "CREATE ROLLUP r1 ON sales (region)",  # no AGG clause
                "CREATE ROLLUP r1 ON sales (region) AGG ()",  # empty AGG
        ):
            with pytest.raises(ParseError):
                sales.query(bad)

    def test_drop_rollup_reclaims_storage(self, sales):
        sales.query(CREATE_R1)
        path = sales.rollups.get("r1").table.path
        sales.query("DROP ROLLUP r1")
        assert not sales.rollups.has("r1")
        assert not sales.vfs.exists(path)
        assert not sales.vfs.exists(path + ".toast")

    def test_drop_rollup_if_exists(self, sales):
        result = sales.query("DROP ROLLUP IF EXISTS nope")
        assert "skipped" in result.rows[0][0]
        with pytest.raises(CatalogError, match="unknown rollup"):
            sales.query("DROP ROLLUP nope")


class TestRouting:
    @pytest.mark.parametrize("sql", DIFFERENTIAL_QUERIES)
    def test_routed_answers_are_bit_identical(self, twins, sql):
        baseline, routed = twins
        expected = baseline.query(sql)
        got = routed.query(sql)
        assert got.plan.get("rollup") == "r1", got.plan
        assert got.columns == expected.columns
        assert got.rows == expected.rows

    def test_explain_names_the_rollup(self, twins):
        _, routed = twins
        plan = routed.explain(
            "SELECT region, count(*) FROM sales GROUP BY region")
        assert plan["rollup"] == "r1"

    def test_hit_and_miss_counters(self, twins):
        _, routed = twins
        routed.query("SELECT region, count(*) FROM sales GROUP BY region")
        assert routed.counters().get("rollup_hits") == 1
        # qty is not a dimension of r1: annotated miss
        result = routed.query(
            "SELECT qty, count(*) FROM sales GROUP BY qty")
        assert result.plan["rollup"] == "none (r1: dimensions not covered)"
        assert routed.counters().get("rollup_misses") == 1

    def test_counters_are_unpriced(self, twins):
        """Routing deliberation costs zero virtual time: a query the
        router examines and declines runs in exactly the time the same
        query takes on a router-less lockstep twin."""
        baseline, routed = twins
        sql = "SELECT qty, count(*) FROM sales GROUP BY qty"
        miss = routed.query(sql)
        assert miss.counters.get("rollup_misses") == 1
        assert miss.elapsed == pytest.approx(
            baseline.query(sql).elapsed, rel=1e-12)

    def test_invisible_with_no_rollups(self, sales):
        result = sales.query(
            "SELECT region, count(*) FROM sales GROUP BY region")
        assert "rollup" not in result.plan
        counters = sales.counters()
        assert "rollup_hits" not in counters
        assert "rollup_misses" not in counters

    def test_non_aggregate_queries_pass_through(self, twins):
        _, routed = twins
        result = routed.query("SELECT region FROM sales WHERE qty > 5")
        assert "rollup" not in result.plan

    def test_predicate_off_dimensions_misses(self, twins):
        baseline, routed = twins
        sql = ("SELECT region, count(*) FROM sales WHERE qty > 3 "
               "GROUP BY region")
        result = routed.query(sql)
        assert result.plan["rollup"] == \
            "none (r1: dimensions not covered)"
        assert result.rows == baseline.query(sql).rows

    def test_missing_aggregate_misses(self, twins):
        _, routed = twins
        result = routed.query(
            "SELECT region, sum(price) FROM sales GROUP BY region")
        assert result.plan["rollup"].startswith("none (r1:")

    def test_distinct_aggregate_misses(self, twins):
        baseline, routed = twins
        sql = "SELECT region, count(DISTINCT product) FROM sales " \
              "GROUP BY region"
        result = routed.query(sql)
        assert result.plan["rollup"] == "none (DISTINCT aggregate)"
        assert result.rows == baseline.query(sql).rows

    def test_float_sum_blocked_on_subset_allowed_exact(self, sales):
        sales.query("CREATE ROLLUP fp ON sales (region, product) "
                    "AGG (sum(price))")
        exact = sales.query("SELECT region, product, sum(price) "
                            "FROM sales GROUP BY region, product")
        assert exact.plan["rollup"] == "fp"
        subset = sales.query(
            "SELECT region, sum(price) FROM sales GROUP BY region")
        assert subset.plan["rollup"] == \
            "none (fp: float re-aggregation)"

    def test_smallest_covering_rollup_wins(self, sales):
        sales.query(CREATE_R1)
        sales.query("CREATE ROLLUP tiny ON sales (region) "
                    "AGG (count(*), sum(qty))")
        result = sales.query(
            "SELECT region, count(*) FROM sales GROUP BY region")
        assert result.plan["rollup"] == "tiny"


class TestStaleness:
    def test_append_invalidates_and_falls_back(self, twins):
        baseline, routed = twins
        for engine in (baseline, routed):
            engine.vfs.append_bytes("sales.csv", MORE_SALES_CSV)
        sql = "SELECT region, count(*), sum(qty) FROM sales GROUP BY region"
        expected = baseline.query(sql)
        got = routed.query(sql)
        assert got.plan["rollup"] == "none (r1: stale)"
        assert got.rows == expected.rows  # fresh data, not the old rollup
        assert ("south", 1, 4) in got.rows

    def test_idle_rebuild_restores_routing(self, twins):
        baseline, routed = twins
        for engine in (baseline, routed):
            engine.vfs.append_bytes("sales.csv", MORE_SALES_CSV)
        sql = "SELECT region, count(*), sum(qty) FROM sales GROUP BY region"
        expected = baseline.query(sql)
        assert routed.query(sql).plan["rollup"] == "none (r1: stale)"
        report = IdleTuner(routed).exploit_idle_time_for_rollups(1e9)
        assert report.rebuilt == ["r1"]
        got = routed.query(sql)
        assert got.plan["rollup"] == "r1"
        assert got.rows == expected.rows

    def test_rebuild_uses_a_fresh_heap_path(self, sales):
        sales.query(CREATE_R1)
        old = sales.rollups.get("r1").table.path
        sales.vfs.append_bytes("sales.csv", MORE_SALES_CSV)
        sales.query("SELECT count(*) FROM sales")  # notices the append
        IdleTuner(sales).exploit_idle_time_for_rollups(1e9)
        new = sales.rollups.get("r1")
        assert new.table.path != old
        assert not sales.vfs.exists(old)
        assert new.builds == 2

    def test_drop_table_cascades_rollups(self, sales):
        sales.query(CREATE_R1)
        path = sales.rollups.get("r1").table.path
        sales.query("DROP TABLE sales")
        assert len(sales.rollups) == 0
        assert not sales.vfs.exists(path)

    def test_recreated_source_never_reuses_old_rollup(self, sales):
        """DROP + re-CREATE under the same name is a different table;
        the cascade already dropped the rollup, so nothing routes."""
        sales.query(CREATE_R1)
        sales.query("DROP TABLE sales")
        sales.register_csv("sales", "sales.csv", sales_schema())
        result = sales.query(
            "SELECT region, count(*) FROM sales GROUP BY region")
        assert "rollup" not in result.plan

    def test_rename_keeps_rollup_routing(self, twins):
        baseline, routed = twins
        for engine in (baseline, routed):
            engine.query("ALTER TABLE sales RENAME TO receipts")
        sql = ("SELECT region, product, sum(qty) FROM receipts "
               "GROUP BY region, product")
        got = routed.query(sql)
        assert got.plan["rollup"] == "r1"
        assert got.rows == baseline.query(sql).rows


class TestIdleTunerRollups:
    def test_candidates_come_from_hot_patterns(self, sales):
        sql = "SELECT region, sum(qty) FROM sales GROUP BY region"
        sales.query(sql)
        sales.query(sql)
        sales.query("SELECT product, count(*) FROM sales GROUP BY product")
        tuner = IdleTuner(sales)
        proposals = tuner.rollup_candidates()
        assert proposals[0].table == "sales"
        assert proposals[0].dims == ("region",)
        assert proposals[0].aggs == (("sum", "qty"),)
        assert proposals[0].requests == 2

    def test_exploit_builds_and_routes(self, sales):
        # Warm statistics first so the raw run recorded here and the
        # post-build probe agree on the aggregation strategy.
        sales.query("SELECT region, product, qty, price FROM sales")
        sql = "SELECT region, sum(qty) FROM sales GROUP BY region"
        expected = sales.query(sql)
        report = IdleTuner(sales).exploit_idle_time_for_rollups(1e9)
        assert "auto_sales" in report.built
        got = sales.query(sql)
        assert got.plan["rollup"] == "auto_sales"
        assert got.rows == expected.rows

    def test_covered_patterns_are_not_reproposed(self, sales):
        sql = "SELECT region, sum(qty) FROM sales GROUP BY region"
        sales.query(sql)
        tuner = IdleTuner(sales)
        tuner.exploit_idle_time_for_rollups(1e9)
        sales.query(sql)  # a routed hit still logs the pattern
        assert tuner.rollup_candidates() == []

    def test_auto_names_avoid_collisions(self, sales):
        sales.query("CREATE ROLLUP auto_sales ON sales (product) "
                    "AGG (count(*))")
        sales.query("SELECT region, sum(qty) FROM sales GROUP BY region")
        report = IdleTuner(sales).exploit_idle_time_for_rollups(1e9)
        assert report.built == ["auto_sales_2"]

    def test_budget_must_be_positive(self, sales):
        with pytest.raises(ReproError, match="budget"):
            IdleTuner(sales).exploit_idle_time_for_rollups(0)

    def test_tiny_budget_stops_early(self, sales):
        sales.query("SELECT region, sum(qty) FROM sales GROUP BY region")
        sales.query("SELECT product, count(*) FROM sales GROUP BY product")
        report = IdleTuner(sales).exploit_idle_time_for_rollups(1e-12)
        assert report.exhausted_budget
        assert len(report.built) <= 1


class TestPreparedStatements:
    def test_prepared_aggregate_reroutes_after_create(self, sales):
        sales.query("SELECT region, product, qty, price FROM sales")
        session = repro.connect(engine=sales)
        stmt = session.prepare(
            "SELECT region, count(*) FROM sales GROUP BY region")
        cold = stmt.execute().fetchall()
        sales.query(CREATE_R1)  # bumps the epoch
        replans_before = session.stats["replans"]
        hot = stmt.execute().fetchall()
        assert session.stats["replans"] == replans_before + 1
        assert hot == cold
        assert sales.counters().get("rollup_hits") == 1
        session.close()

    def test_prepared_statement_stops_routing_after_drop(self, sales):
        sales.query(CREATE_R1)
        session = repro.connect(engine=sales)
        stmt = session.prepare(
            "SELECT region, count(*) FROM sales GROUP BY region")
        hot = stmt.execute().fetchall()
        assert sales.counters().get("rollup_hits") == 1
        session.execute("DROP ROLLUP r1")
        cold = stmt.execute().fetchall()
        assert cold == hot
        assert sales.counters().get("rollup_hits") == 1  # unchanged
        session.close()
