"""Property-based differential tests for the in-situ scan.

The invariant: whatever sequence of queries runs (warming the map and
cache along the way), every scan's output equals a naive re-parse of
the raw file. This is the PM/cache correctness invariant from DESIGN.md
§5 under adversarial workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PostgresRaw, PostgresRawConfig, VirtualFS
from repro.sql.scanapi import ScanPredicate
from repro.workloads.micro import micro_schema

N_ATTRS = 6
VALUE_MAX = 1000

rows_strategy = st.lists(
    st.lists(st.integers(0, VALUE_MAX - 1), min_size=N_ATTRS,
             max_size=N_ATTRS),
    min_size=1, max_size=40)

query_strategy = st.tuples(
    st.lists(st.integers(0, N_ATTRS - 1), min_size=1, max_size=4,
             unique=True),                       # projected attrs
    st.one_of(st.none(),
              st.tuples(st.integers(0, N_ATTRS - 1),
                        st.integers(0, VALUE_MAX))),  # optional a<t filter
)

workload_strategy = st.lists(query_strategy, min_size=1, max_size=6)


def build_engine(rows, block_size, pm_budget=None, cache_budget=None,
                 enable_pm=True, enable_cache=True):
    vfs = VirtualFS()
    payload = "\n".join(",".join(map(str, row)) for row in rows)
    vfs.create("t.csv", (payload + "\n").encode())
    config = PostgresRawConfig(
        row_block_size=block_size,
        pm_budget_bytes=pm_budget,
        cache_budget_bytes=cache_budget,
        enable_positional_map=enable_pm,
        enable_cache=enable_cache,
        enable_statistics=False,
    )
    db = PostgresRaw(config=config, vfs=vfs)
    db.register_csv("t", "t.csv", micro_schema(N_ATTRS))
    return db.catalog.get("t").access


def expected(rows, attrs, filt):
    out = []
    for row in rows:
        if filt is not None:
            attr, threshold = filt
            if not row[attr] < threshold:
                continue
        out.append(tuple(row[a] for a in attrs))
    return out


def run_workload(access, rows, workload):
    for attrs, filt in workload:
        predicate = None
        if filt is not None:
            attr, threshold = filt
            predicate = ScanPredicate(
                [attr], lambda v, a=attr, t=threshold: v[a] < t, 1)
        got = list(access.scan(attrs, predicate))
        assert got == expected(rows, attrs, filt), (attrs, filt)


class TestScanDifferential:
    @given(rows_strategy, workload_strategy, st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_any_workload_matches_ground_truth(self, rows, workload,
                                               block_size):
        access = build_engine(rows, block_size)
        run_workload(access, rows, workload)

    @given(rows_strategy, workload_strategy)
    @settings(max_examples=25, deadline=None)
    def test_tight_budgets_never_corrupt_results(self, rows, workload):
        # Evictions (map and cache) may only cost time, never answers.
        access = build_engine(rows, block_size=4, pm_budget=64,
                              cache_budget=64)
        run_workload(access, rows, workload)

    @given(rows_strategy, workload_strategy)
    @settings(max_examples=25, deadline=None)
    def test_baseline_mode_matches_ground_truth(self, rows, workload):
        access = build_engine(rows, block_size=8, enable_pm=False,
                              enable_cache=False)
        run_workload(access, rows, workload)

    @given(rows_strategy, workload_strategy)
    @settings(max_examples=25, deadline=None)
    def test_cache_only_mode(self, rows, workload):
        access = build_engine(rows, block_size=8, enable_pm=False,
                              enable_cache=True)
        run_workload(access, rows, workload)

    @given(rows_strategy, workload_strategy)
    @settings(max_examples=25, deadline=None)
    def test_pm_only_mode(self, rows, workload):
        access = build_engine(rows, block_size=8, enable_pm=True,
                              enable_cache=False)
        run_workload(access, rows, workload)

    @given(rows_strategy, st.lists(st.integers(0, N_ATTRS - 1),
                                   min_size=1, max_size=3, unique=True),
           st.integers(1, 39))
    @settings(max_examples=25, deadline=None)
    def test_abandoned_generators_leave_consistent_state(self, rows, attrs,
                                                         stop_after):
        access = build_engine(rows, block_size=4)
        gen = access.scan(attrs, None)
        for _ in range(min(stop_after, len(rows))):
            try:
                next(gen)
            except StopIteration:
                break
        gen.close()
        got = list(access.scan(attrs, None))
        assert got == expected(rows, attrs, None)
